//! Central-DP baselines: what a trusted aggregator buys you.
//!
//! §1.5 of the tutorial contrasts LDP with the centralized model: with a
//! trusted curator, a histogram needs only `Lap(2/ε)` per cell —
//! **constant** error, versus the `Θ(√n/ε)` per-cell error of any LDP
//! protocol. Experiment E11 regenerates that gap, which is the tutorial's
//! core motivation for studying hybrid and multi-round designs.
//!
//! Sensitivity convention: *replacement* neighbors (one user changes
//! value), so one user moves two histogram cells by 1 each → L1
//! sensitivity 2 → `Lap(2/ε)` per cell (or two-sided geometric for
//! integer releases).

use ldp_core::noise::{
    laplace_variance, sample_laplace, sample_two_sided_geometric, two_sided_geometric_variance,
};
use ldp_core::Epsilon;
use rand::Rng;

/// A central-DP histogram release over `[0, d)` with Laplace noise.
#[derive(Debug, Clone, Copy)]
pub struct CentralHistogram {
    d: u64,
    epsilon: Epsilon,
}

impl CentralHistogram {
    /// Creates the mechanism.
    ///
    /// # Panics
    /// Panics if `d == 0`.
    pub fn new(d: u64, epsilon: Epsilon) -> Self {
        assert!(d > 0, "domain must be non-empty");
        Self { d, epsilon }
    }

    /// Laplace scale per cell: `2/ε` (replacement sensitivity).
    pub fn noise_scale(&self) -> f64 {
        2.0 / self.epsilon.value()
    }

    /// Releases a noisy histogram of the raw values (which the trusted
    /// curator sees in the clear).
    ///
    /// # Panics
    /// Panics if any value is outside the domain.
    pub fn release<R: Rng + ?Sized>(&self, values: &[u64], rng: &mut R) -> Vec<f64> {
        let mut hist = vec![0.0f64; self.d as usize];
        for &v in values {
            assert!(v < self.d, "value {v} outside domain {}", self.d);
            hist[v as usize] += 1.0;
        }
        let scale = self.noise_scale();
        for h in hist.iter_mut() {
            *h += sample_laplace(scale, rng);
        }
        hist
    }

    /// Integer release using two-sided geometric noise.
    ///
    /// # Panics
    /// Panics if any value is outside the domain.
    pub fn release_integer<R: Rng + ?Sized>(&self, values: &[u64], rng: &mut R) -> Vec<i64> {
        let mut hist = vec![0i64; self.d as usize];
        for &v in values {
            assert!(v < self.d, "value {v} outside domain {}", self.d);
            hist[v as usize] += 1;
        }
        let scale = self.noise_scale();
        for h in hist.iter_mut() {
            *h += sample_two_sided_geometric(scale, rng);
        }
        hist
    }

    /// Per-cell count variance — independent of `n`, the headline
    /// difference from the local model.
    pub fn count_variance(&self) -> f64 {
        laplace_variance(self.noise_scale())
    }

    /// Per-cell variance of the integer release.
    pub fn count_variance_integer(&self) -> f64 {
        two_sided_geometric_variance(self.noise_scale())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn release_is_unbiased_and_tight() {
        let mech = CentralHistogram::new(8, eps(1.0));
        let mut rng = StdRng::seed_from_u64(1);
        let values: Vec<u64> = (0..10_000).map(|i| i % 8).collect();
        let hist = mech.release(&values, &mut rng);
        let sd = mech.count_variance().sqrt();
        for (i, &h) in hist.iter().enumerate() {
            assert!((h - 1250.0).abs() < 6.0 * sd + 1.0, "cell {i}: {h}");
        }
    }

    #[test]
    fn variance_independent_of_n() {
        let mech = CentralHistogram::new(4, eps(0.5));
        // Var formula uses no n at all; confirm empirically across sizes.
        let mut rng = StdRng::seed_from_u64(2);
        for &n in &[100usize, 100_000] {
            let values: Vec<u64> = (0..n as u64).map(|i| i % 4).collect();
            let trials = 500;
            let errs: Vec<f64> = (0..trials)
                .map(|_| mech.release(&values, &mut rng)[0] - (n as f64 / 4.0))
                .collect();
            let var = errs.iter().map(|e| e * e).sum::<f64>() / trials as f64;
            let expected = mech.count_variance();
            assert!(
                (var - expected).abs() / expected < 0.3,
                "n={n}: var={var} expected={expected}"
            );
        }
    }

    #[test]
    fn integer_release_matches_variance() {
        let mech = CentralHistogram::new(2, eps(1.0));
        let mut rng = StdRng::seed_from_u64(3);
        let values = vec![0u64; 1000];
        let trials = 2000;
        let errs: Vec<f64> = (0..trials)
            .map(|_| mech.release_integer(&values, &mut rng)[0] as f64 - 1000.0)
            .collect();
        let var = errs.iter().map(|e| e * e).sum::<f64>() / trials as f64;
        let expected = mech.count_variance_integer();
        assert!(
            (var - expected).abs() / expected < 0.2,
            "var={var} expected={expected}"
        );
    }

    #[test]
    fn central_crushes_local_error() {
        // The tutorial's headline: central error O(1/eps), local error
        // O(sqrt(n)/eps).
        use ldp_core::fo::{FrequencyOracle, OptimizedLocalHashing};
        let e = eps(1.0);
        let n = 100_000;
        let central_var = CentralHistogram::new(64, e).count_variance();
        let local_var = OptimizedLocalHashing::new(64, e).noise_floor_variance(n);
        assert!(local_var / central_var > 1000.0, "gap should be huge");
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn out_of_domain_panics() {
        let mech = CentralHistogram::new(4, eps(1.0));
        let mut rng = StdRng::seed_from_u64(0);
        mech.release(&[4], &mut rng);
    }
}
