//! Marginal release under LDP: the Fourier approach vs its baselines.
//!
//! Users hold `d` binary attributes; analysts want k-way *marginals* —
//! the joint distribution over attribute subsets. The tutorial's §1.3
//! explains the dilemma and the fix:
//!
//! * **Full materialization** treats `{0,1}^d` as one `2^d` domain and
//!   runs a frequency oracle. Every marginal cell then sums `2^{d−k}`
//!   noisy cells — error grows as `√(2^{d−k})`.
//! * **Direct collection** splits users across the requested marginals and
//!   runs a small oracle per marginal — error grows with the *number* of
//!   marginals.
//! * **Fourier collection** (Cormode–Kulkarni–Srivastava) observes that a
//!   k-way marginal is determined by only the `2^k` Fourier coefficients
//!   indexed by subsets of its attributes. Each user contributes one
//!   randomized-response bit for one sampled coefficient; every requested
//!   marginal reuses the same coefficient pool, so error grows only with
//!   the size of the *downward closure* of the query set.
//!
//! Here the Fourier basis over `{0,1}^d` **is** the Hadamard basis:
//! `χ_T(x) = (−1)^{⟨x ∧ T⟩}` — evaluated in O(1) by popcount, exactly as
//! in `ldp-apple`'s HCMS.

use ldp_core::rr::BinaryRandomizedResponse;
use ldp_core::{Epsilon, Error, Result};
use ldp_sketch::hash::FastMap;
use rand::Rng;

/// The parity character `χ_T(x) = (−1)^{popcount(x & T)}` as ±1.
#[inline]
fn chi(t: u64, x: u64) -> f64 {
    if (t & x).count_ones().is_multiple_of(2) {
        1.0
    } else {
        -1.0
    }
}

/// A marginal query: the set of attribute indices, as a bitmask over the
/// `d` attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MarginalQuery(pub u64);

impl MarginalQuery {
    /// Builds a query from attribute indices.
    ///
    /// # Panics
    /// Panics if any index is ≥ 63.
    pub fn from_attrs(attrs: &[u32]) -> Self {
        let mut mask = 0u64;
        for &a in attrs {
            assert!(a < 63, "attribute index {a} too large");
            mask |= 1 << a;
        }
        Self(mask)
    }

    /// Number of attributes in the marginal (its "k").
    pub fn arity(&self) -> u32 {
        self.0.count_ones()
    }

    /// Enumerates all subsets of this query's attribute mask (the
    /// downward closure), including the empty set.
    pub fn subsets(&self) -> Vec<u64> {
        let mask = self.0;
        let mut out = Vec::with_capacity(1 << self.arity());
        let mut t = 0u64;
        loop {
            out.push(t);
            if t == mask {
                break;
            }
            t = (t.wrapping_sub(mask)) & mask;
        }
        out
    }

    /// Enumerates the marginal's cells as compact indices `0..2^k` paired
    /// with their expanded bitmask positions within the query attributes.
    fn cells(&self) -> Vec<u64> {
        let attrs: Vec<u32> = (0..64).filter(|&i| self.0 >> i & 1 == 1).collect();
        (0..(1u64 << attrs.len()))
            .map(|cell| {
                let mut x = 0u64;
                for (bit, &attr) in attrs.iter().enumerate() {
                    if cell >> bit & 1 == 1 {
                        x |= 1 << attr;
                    }
                }
                x
            })
            .collect()
    }
}

/// A computed marginal table: probabilities per cell, in the cell order of
/// the query's attributes (LSB-first).
#[derive(Debug, Clone, PartialEq)]
pub struct MarginalTable {
    /// The query this table answers.
    pub query: MarginalQuery,
    /// Estimated probability of each of the `2^k` cells.
    pub probabilities: Vec<f64>,
}

/// Exact (non-private) marginal computation, the ground truth for tests
/// and experiment error metrics.
pub fn exact_marginal(data: &[u64], query: MarginalQuery) -> MarginalTable {
    let cells = query.cells();
    let mut probs = vec![0.0; cells.len()];
    if data.is_empty() {
        return MarginalTable {
            query,
            probabilities: probs,
        };
    }
    for &x in data {
        let projected = x & query.0;
        let idx = cells
            .iter()
            .position(|&c| c == projected)
            .expect("cell exists");
        probs[idx] += 1.0;
    }
    for p in probs.iter_mut() {
        *p /= data.len() as f64;
    }
    MarginalTable {
        query,
        probabilities: probs,
    }
}

/// The Fourier-basis marginal-release protocol.
#[derive(Debug, Clone)]
pub struct FourierMarginals {
    d: u32,
    epsilon: Epsilon,
    /// The coefficient pool: union of downward closures of all queries.
    coefficients: Vec<u64>,
}

impl FourierMarginals {
    /// Prepares the protocol for a workload of marginal queries over `d`
    /// binary attributes.
    ///
    /// # Errors
    /// Rejects `d` outside `[1, 62]` or queries referencing attributes
    /// beyond `d`.
    pub fn new(d: u32, queries: &[MarginalQuery], epsilon: Epsilon) -> Result<Self> {
        if d == 0 || d > 62 {
            return Err(Error::InvalidDomain(format!(
                "d must be in [1, 62], got {d}"
            )));
        }
        let full_mask = (1u64 << d) - 1;
        let mut pool: Vec<u64> = Vec::new();
        for q in queries {
            if q.0 & !full_mask != 0 {
                return Err(Error::InvalidParameter(format!(
                    "query {:#x} references attributes beyond d={d}",
                    q.0
                )));
            }
            pool.extend(q.subsets());
        }
        pool.sort_unstable();
        pool.dedup();
        if pool.is_empty() {
            return Err(Error::InvalidParameter("no queries supplied".into()));
        }
        Ok(Self {
            d,
            epsilon,
            coefficients: pool,
        })
    }

    /// Number of Fourier coefficients the protocol estimates.
    pub fn coefficient_count(&self) -> usize {
        self.coefficients.len()
    }

    /// Attribute count `d`.
    pub fn dimensions(&self) -> u32 {
        self.d
    }

    /// Runs collection: each user samples one coefficient `T` from the
    /// pool and reports `χ_T(x)` through binary randomized response.
    /// Returns the estimated coefficient map `T → φ̂_T`.
    pub fn collect<R: Rng>(&self, data: &[u64], rng: &mut R) -> FastMap<u64, f64> {
        let rr = BinaryRandomizedResponse::new(self.epsilon);
        let c = self.coefficients.len();
        let mut pos_counts: FastMap<u64, (u64, u64)> = FastMap::default(); // T -> (ones, total)
        for (i, &x) in data.iter().enumerate() {
            // Round-robin coefficient assignment (uniform in expectation,
            // lower variance than sampling).
            let t = self.coefficients[i % c];
            let bit = chi(t, x) > 0.0;
            let noisy = rr.randomize(bit, rng);
            let entry = pos_counts.entry(t).or_insert((0, 0));
            if noisy {
                entry.0 += 1;
            }
            entry.1 += 1;
        }
        let mut out = FastMap::default();
        for (&t, &(ones, total)) in &pos_counts {
            if total == 0 {
                continue;
            }
            // P(chi = +1) estimate, then phi = 2 P(+1) - 1.
            let p_plus = rr.estimate_proportion(ones as usize, total as usize);
            out.insert(t, 2.0 * p_plus - 1.0);
        }
        // chi_emptyset == 1 always; pin it exactly.
        out.insert(0, 1.0);
        out
    }

    /// Reconstructs one marginal from collected coefficients:
    /// `P_S(y) = 2^{−k} · Σ_{T ⊆ S} χ_T(y) · φ̂_T`.
    ///
    /// # Panics
    /// Panics if the query was not covered by the constructor's pool.
    pub fn reconstruct(
        &self,
        coefficients: &FastMap<u64, f64>,
        query: MarginalQuery,
    ) -> MarginalTable {
        let subsets = query.subsets();
        let cells = query.cells();
        let k = query.arity();
        let probabilities = cells
            .iter()
            .map(|&y| {
                let sum: f64 = subsets
                    .iter()
                    .map(|&t| {
                        let phi = coefficients.get(&t).unwrap_or_else(|| {
                            panic!("coefficient {t:#x} missing; was the query registered?")
                        });
                        chi(t, y) * phi
                    })
                    .sum();
                sum / (1u64 << k) as f64
            })
            .collect();
        MarginalTable {
            query,
            probabilities,
        }
    }
}

/// Baseline: full-domain materialization through OLH, then summing cells.
pub fn full_materialization_marginal<R: Rng>(
    data: &[u64],
    d: u32,
    query: MarginalQuery,
    epsilon: Epsilon,
    rng: &mut R,
) -> MarginalTable {
    use ldp_core::fo::{FoAggregator, FrequencyOracle, OptimizedLocalHashing};
    assert!(
        d <= 20,
        "full materialization is only tractable for small d"
    );
    let oracle = OptimizedLocalHashing::new(1u64 << d, epsilon);
    let mut agg = oracle.new_aggregator();
    for &x in data {
        agg.accumulate(&oracle.randomize(x, rng));
    }
    let counts = agg.estimate();
    let cells = query.cells();
    let n = data.len().max(1) as f64;
    let probabilities = cells
        .iter()
        .map(|&cell| {
            // Sum the full-domain estimate over all x projecting onto cell.
            let mut total = 0.0;
            for (x, &c) in counts.iter().enumerate() {
                if (x as u64) & query.0 == cell {
                    total += c;
                }
            }
            total / n
        })
        .collect();
    MarginalTable {
        query,
        probabilities,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    /// Correlated synthetic data: attr 1 = attr 0 w.p. 0.9; attr 2 random.
    fn correlated_data(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let a0 = rng.gen_bool(0.5) as u64;
                let a1 = if rng.gen_bool(0.9) { a0 } else { 1 - a0 };
                let a2 = rng.gen_bool(0.3) as u64;
                a0 | (a1 << 1) | (a2 << 2)
            })
            .collect()
    }

    #[test]
    fn subsets_enumerates_downward_closure() {
        let q = MarginalQuery::from_attrs(&[0, 2]);
        let mut subs = q.subsets();
        subs.sort_unstable();
        assert_eq!(subs, vec![0b000, 0b001, 0b100, 0b101]);
        assert_eq!(q.arity(), 2);
    }

    #[test]
    fn exact_marginal_sums_to_one() {
        let data = correlated_data(1000, 1);
        let t = exact_marginal(&data, MarginalQuery::from_attrs(&[0, 1]));
        let sum: f64 = t.probabilities.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // Correlation visible: P(00) + P(11) ~ 0.9.
        assert!(t.probabilities[0] + t.probabilities[3] > 0.8);
    }

    #[test]
    fn fourier_recovers_marginals() {
        let d = 8;
        let queries = vec![
            MarginalQuery::from_attrs(&[0, 1]),
            MarginalQuery::from_attrs(&[1, 2]),
            MarginalQuery::from_attrs(&[0, 2]),
        ];
        let fm = FourierMarginals::new(d, &queries, eps(2.0)).unwrap();
        let data = correlated_data(100_000, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let coeffs = fm.collect(&data, &mut rng);
        for q in &queries {
            let est = fm.reconstruct(&coeffs, *q);
            let truth = exact_marginal(&data, *q);
            for (cell, (&e, &t)) in est
                .probabilities
                .iter()
                .zip(&truth.probabilities)
                .enumerate()
            {
                assert!(
                    (e - t).abs() < 0.05,
                    "query {:#x} cell {cell}: est={e} truth={t}",
                    q.0
                );
            }
            // Cells sum to ~1 (phi_0 pinned to 1).
            let sum: f64 = est.probabilities.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "sum={sum}");
        }
    }

    #[test]
    fn coefficient_pool_deduplicates() {
        let queries = vec![
            MarginalQuery::from_attrs(&[0, 1]),
            MarginalQuery::from_attrs(&[0, 1]), // duplicate
            MarginalQuery::from_attrs(&[1, 2]),
        ];
        let fm = FourierMarginals::new(4, &queries, eps(1.0)).unwrap();
        // closures: {0,1,2,3} and {0,2,4,6} -> union size 6.
        assert_eq!(fm.coefficient_count(), 6);
    }

    #[test]
    fn full_materialization_agrees_with_truth() {
        let data = correlated_data(60_000, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let q = MarginalQuery::from_attrs(&[0, 1]);
        let est = full_materialization_marginal(&data, 3, q, eps(2.0), &mut rng);
        let truth = exact_marginal(&data, q);
        for (cell, (&e, &t)) in est
            .probabilities
            .iter()
            .zip(&truth.probabilities)
            .enumerate()
        {
            assert!((e - t).abs() < 0.08, "cell {cell}: est={e} truth={t}");
        }
    }

    #[test]
    fn rejects_out_of_range_queries() {
        let q = MarginalQuery::from_attrs(&[5]);
        assert!(FourierMarginals::new(4, &[q], eps(1.0)).is_err());
        assert!(FourierMarginals::new(0, &[q], eps(1.0)).is_err());
        assert!(FourierMarginals::new(4, &[], eps(1.0)).is_err());
    }

    #[test]
    fn chi_is_multiplicative_character() {
        for t in 0..16u64 {
            for x in 0..16u64 {
                for y in 0..16u64 {
                    assert_eq!(chi(t, x ^ y), chi(t, x) * chi(t, y));
                }
            }
        }
    }
}
