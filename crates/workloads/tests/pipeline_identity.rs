//! Identity invariants across the byte path: the concurrent pipeline
//! must aggregate bit-identically to a sequential service over the same
//! sharded frame plan — down to empty and near-empty populations, where
//! shard clamping and batch splitting hit their edge cases — and the
//! window ring's subtractive retirement must leave a running total
//! bit-identical to one rebuilt from the live windows.

use ldp_core::protocol::{MechanismKind, ProtocolDescriptor};
use ldp_workloads::pipeline::{split_frames, stream_population};
use ldp_workloads::window::{WindowConfig, WindowRing};
use ldp_workloads::{
    BackpressurePolicy, CollectorPipeline, CollectorService, PipelineConfig, WireClient,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn olhc(d: u64) -> ProtocolDescriptor {
    ProtocolDescriptor::builder(MechanismKind::CohortLocalHashing)
        .domain_size(d)
        .epsilon(1.0)
        .cohorts(16)
        .build()
        .unwrap()
}

fn cms(d: u64) -> ProtocolDescriptor {
    ProtocolDescriptor::builder(MechanismKind::AppleCms)
        .domain_size(d)
        .epsilon(2.0)
        .sketch(8, 64)
        .build()
        .unwrap()
}

fn dbit(d: u64) -> ProtocolDescriptor {
    ProtocolDescriptor::builder(MechanismKind::MicrosoftDBitFlip)
        .domain_size(d)
        .bits_per_device(4)
        .epsilon(1.0)
        .build()
        .unwrap()
}

/// Regression: `split_frames` on an empty stream used to clamp
/// `parts` to one and hand back a single `(vec![], 0)` batch, which
/// `stream_population` then submitted — an empty buffer occupying a
/// queue slot and waking a worker for nothing. No frames, no batches.
#[test]
fn split_frames_empty_stream_yields_no_batches() {
    for parts in [1usize, 2, 7, 64] {
        let batches = split_frames(&[], parts).unwrap();
        assert!(batches.is_empty(), "parts={parts}: {batches:?}");
    }
}

/// The driver-level consequence of the same bug: an empty population
/// must flow through the pipeline without enqueueing anything.
#[test]
fn empty_population_submits_nothing() {
    let desc = olhc(16);
    let client = WireClient::from_descriptor(&desc).unwrap();
    let pipeline = CollectorPipeline::new(
        &desc,
        PipelineConfig {
            shards: 4,
            workers: 2,
            queue_depth: 2,
            policy: BackpressurePolicy::Block,
        },
    )
    .unwrap();
    let accepted = stream_population(&client, &pipeline, &[], 7, 3).unwrap();
    assert_eq!(accepted, 0);
    let (merged, stats) = pipeline.finish().unwrap();
    assert_eq!(merged.reports(), 0);
    assert_eq!(stats.total_frames(), 0);
    assert_eq!(stats.dropped_batches(), 0);
}

fn sequential_reference(
    desc: &ProtocolDescriptor,
    client: &WireClient,
    values: &[u64],
    seed: u64,
    shards: usize,
) -> CollectorService {
    let mut reference = CollectorService::from_descriptor(desc).unwrap();
    for buf in &client.frames_sharded(values, seed, shards).unwrap() {
        reference.ingest_concat(buf).unwrap();
    }
    reference
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // Tiny populations exercise every clamp at once: fewer values than
    // shards, fewer frames than batches, empty shards, the empty
    // population. The pipeline must still match the sequential
    // sharded reference bit for bit, at any worker count.
    #[test]
    fn tiny_population_pipeline_matches_sequential(
        len in 0usize..12,
        shards in 1usize..6,
        workers in 1usize..4,
        batches in 1usize..4,
        seed in 0u64..500,
    ) {
        let d = 16u64;
        let desc = olhc(d);
        let client = WireClient::from_descriptor(&desc).unwrap();
        let values: Vec<u64> = (0..len as u64).map(|i| (i * 7 + seed) % d).collect();

        let reference = sequential_reference(&desc, &client, &values, seed, shards);

        let pipeline = CollectorPipeline::new(
            &desc,
            PipelineConfig {
                shards,
                workers,
                queue_depth: 2,
                policy: BackpressurePolicy::Block,
            },
        )
        .unwrap();
        let accepted = stream_population(&client, &pipeline, &values, seed, batches).unwrap();
        prop_assert_eq!(accepted, values.len());
        let (merged, stats) = pipeline.finish().unwrap();
        prop_assert_eq!(stats.total_frames(), values.len());
        prop_assert_eq!(merged.reports(), reference.reports());
        let (a, b) = (merged.estimates(), reference.estimates());
        let a: Vec<u64> = a.iter().map(|x| x.to_bits()).collect();
        let b: Vec<u64> = b.iter().map(|x| x.to_bits()).collect();
        prop_assert_eq!(a, b);
    }

    // The acceptance invariant for subtractive retirement: after an
    // arbitrary bursty multi-window stream, the ring's maintained
    // total — built by merging every frame and *subtracting* each
    // retired window — is bit-identical to a total rebuilt from
    // scratch out of the live windows, for each service-registered
    // subtractive mechanism family (OLH-C, Apple CMS, dBitFlip).
    #[test]
    fn ring_retirement_total_matches_rebuild(
        mech in 0usize..3,
        horizon in 1usize..5,
        buckets in 1usize..8,
        counts in proptest::collection::vec(0usize..10, 1..8),
        seed in 0u64..500,
    ) {
        let d = 16u64;
        let desc = match mech {
            0 => olhc(d),
            1 => cms(d),
            _ => dbit(d),
        };
        let client = WireClient::from_descriptor(&desc).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ring = WindowRing::new(&desc, WindowConfig::new(10, horizon)).unwrap();

        let mut stream = Vec::new();
        for bucket in 0..buckets {
            let count = counts[bucket % counts.len()];
            stream.clear();
            for i in 0..count {
                client
                    .randomize_item((i as u64 + seed) % d, &mut rng, &mut stream)
                    .unwrap();
            }
            let t = bucket as u64 * 10 + 3;
            if count == 0 {
                ring.advance_to(t).unwrap();
            } else {
                prop_assert_eq!(ring.ingest_concat(t, &stream).unwrap(), count);
            }
        }

        // Retirements must all have taken the exact-subtract path.
        prop_assert_eq!(ring.stats().retired_rebuild, 0);
        let expected_retired = buckets.saturating_sub(horizon) as u64;
        prop_assert_eq!(ring.stats().retired_subtract, expected_retired);

        // Rebuild from the live windows and require state bit-identity.
        let mut rebuilt = CollectorService::from_descriptor(&desc).unwrap();
        let mut live_reports = 0usize;
        for (_, window) in ring.windows() {
            live_reports += window.reports();
            rebuilt
                .merge(CollectorService::from_checkpoint(&window.checkpoint()).unwrap())
                .unwrap();
        }
        prop_assert_eq!(ring.reports(), live_reports);
        prop_assert_eq!(ring.total().checkpoint(), rebuilt.checkpoint());
    }
}
