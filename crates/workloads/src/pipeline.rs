//! The concurrent collector pipeline: a sharded channel-ingest fleet.
//!
//! A deployment's collector is not one loop over one buffer — it is a
//! fleet of ingest workers draining network queues concurrently, folded
//! into one aggregate at snapshot time. [`CollectorPipeline`] is that
//! shape for the workspace:
//!
//! ```text
//!                submit(shard, frames)
//!                        │  (route: worker = shard % W)
//!        ┌───────────────┼───────────────┐
//!   [bounded q0]    [bounded q1]    [bounded q2]     ← sync_channel,
//!        │               │               │             depth-gauged
//!    worker 0        worker 1        worker 2
//!   shards 0,3,6    shards 1,4,7    shards 2,5,8     ← strided, as in
//!        │               │               │             `parallel.rs`
//!    per-shard       per-shard       per-shard
//!    services        services        services
//!        └───────────────┴───────────────┘
//!                 finish(): collect all shard services,
//!                 merge **in shard order** → one service
//! ```
//!
//! **Bit-identity.** Each *logical shard* owns its own
//! [`CollectorService`]; a worker only hosts shards (strided,
//! `w, w+W, w+2W, …`), it never mixes their states. At
//! [`finish`](CollectorPipeline::finish) the shard services are merged
//! in **shard order** — the same left fold
//! [`crate::parallel::accumulate_mech_sharded`] performs — so the
//! aggregate is bit-identical across worker counts, queue depths, and
//! thread schedules. For integer-counter mechanisms (every registered
//! kind except SHE and 1BitMean, whose merges sum `f64`s) the fold is
//! exact addition, so the result further equals a single service
//! ingesting the whole stream in any order; the float mechanisms are
//! bit-identical to the sharded reference (per-shard services merged in
//! shard order), the invariant `tests/pipeline_identity.rs` enforces.
//!
//! **Backpressure.** Queues are bounded ([`PipelineConfig::queue_depth`]
//! batches). [`BackpressurePolicy::Block`] parks the submitting thread
//! until the worker drains (lossless, the default);
//! [`BackpressurePolicy::DropNewest`] sheds the submitted batch instead
//! and counts it, for drivers that prefer staleness bounds over
//! completeness. Queue depth and high-water marks are tracked per
//! worker and reported in [`PipelineStats`].

use crate::service::{workspace_registry, CollectorService, WireClient};
use ldp_core::protocol::{ProtocolDescriptor, Registry};
use ldp_core::wire::next_frame;
use ldp_core::{LdpError, Result};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// What a full ingest queue does to the next submitted batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Park the submitting thread until the worker drains a slot —
    /// lossless, and the natural choice when the producer can afford to
    /// stall (the default).
    Block,
    /// Drop the batch being submitted and count it
    /// ([`WorkerStats::dropped_batches`]); `submit` returns
    /// `Ok(false)`. For drivers bounding staleness rather than loss.
    DropNewest,
}

/// Shape of a [`CollectorPipeline`]: logical shards (state layout),
/// physical workers (threads), queue depth (backpressure horizon).
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Logical shard count — the unit of deterministic state. Fixed
    /// independently of `workers`, exactly like the engine in
    /// `parallel.rs`, so the merged aggregate does not depend on the
    /// thread count.
    pub shards: usize,
    /// Ingest worker threads (capped at `shards`; each worker hosts the
    /// shards congruent to its index mod the worker count).
    pub workers: usize,
    /// Bounded queue capacity per worker, in batches.
    pub queue_depth: usize,
    /// Full-queue behavior.
    pub policy: BackpressurePolicy,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            shards: 8,
            workers: 4,
            queue_depth: 64,
            policy: BackpressurePolicy::Block,
        }
    }
}

/// Shared per-worker queue instrumentation. Depth is pre-incremented at
/// submit and decremented after the worker processes the batch, so the
/// high-water mark counts the batch in flight to a full queue —
/// `queue_depth + 1` under sustained blocking backpressure.
#[derive(Debug, Default)]
struct QueueGauge {
    depth: AtomicUsize,
    hwm: AtomicUsize,
    dropped: AtomicUsize,
}

/// Per-worker ingest accounting, reported by
/// [`CollectorPipeline::finish`].
#[derive(Debug, Clone, Default)]
pub struct WorkerStats {
    /// Frames folded into this worker's shard services.
    pub frames: usize,
    /// Batches drained from the queue.
    pub batches: usize,
    /// Wall time spent ingesting (excludes queue waits).
    pub busy_nanos: u64,
    /// Peak observed queue depth, in batches — sampled at submit time,
    /// so it includes the batch being submitted.
    pub queue_hwm: usize,
    /// Batches shed by [`BackpressurePolicy::DropNewest`].
    pub dropped_batches: usize,
}

impl WorkerStats {
    /// Ingest throughput over busy time (0 when nothing was timed).
    #[must_use]
    pub fn frames_per_sec(&self) -> f64 {
        if self.busy_nanos == 0 {
            return 0.0;
        }
        self.frames as f64 * 1e9 / self.busy_nanos as f64
    }
}

/// The pipeline's instrumentation report: per-worker ingest stats plus
/// the snapshot-time merge cost.
#[derive(Debug, Clone)]
pub struct PipelineStats {
    /// One entry per worker, in worker order.
    pub workers: Vec<WorkerStats>,
    /// Wall time of the shard-order merge fold at finish.
    pub merge_nanos: u64,
}

impl PipelineStats {
    /// Frames folded in across all workers.
    #[must_use]
    pub fn total_frames(&self) -> usize {
        self.workers.iter().map(|w| w.frames).sum()
    }

    /// Batches shed across all workers (always 0 under
    /// [`BackpressurePolicy::Block`]).
    #[must_use]
    pub fn dropped_batches(&self) -> usize {
        self.workers.iter().map(|w| w.dropped_batches).sum()
    }

    /// The largest per-worker queue high-water mark.
    #[must_use]
    pub fn queue_hwm(&self) -> usize {
        self.workers.iter().map(|w| w.queue_hwm).max().unwrap_or(0)
    }

    /// Aggregate ingest throughput over summed busy time.
    #[must_use]
    pub fn frames_per_sec(&self) -> f64 {
        let busy: u64 = self.workers.iter().map(|w| w.busy_nanos).sum();
        if busy == 0 {
            return 0.0;
        }
        self.total_frames() as f64 * 1e9 / busy as f64
    }
}

/// What a worker thread hands back at join time.
struct WorkerOutcome {
    /// `(shard, service)` for every shard this worker hosted.
    services: Vec<(usize, CollectorService)>,
    frames: usize,
    batches: usize,
    busy_nanos: u64,
    /// First ingest failure, if any (`(shard, error)`); later batches
    /// were drained unprocessed.
    error: Option<(usize, LdpError)>,
}

/// A multi-threaded collector fleet over one protocol descriptor: N
/// ingest workers pulling frame batches from bounded queues into
/// per-shard [`CollectorService`]s, folded in shard order at
/// [`finish`](Self::finish). See the module docs for the queue diagram
/// and the bit-identity argument.
#[derive(Debug)]
pub struct CollectorPipeline {
    senders: Vec<SyncSender<(usize, Vec<u8>)>>,
    gauges: Vec<Arc<QueueGauge>>,
    handles: Vec<JoinHandle<WorkerOutcome>>,
    shards: usize,
    policy: BackpressurePolicy,
}

impl CollectorPipeline {
    /// Spawns the fleet for `descriptor` against the full workspace
    /// registry.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] for a zero shard/worker/queue
    /// count, plus whatever [`Registry::build`] surfaces.
    pub fn new(descriptor: &ProtocolDescriptor, config: PipelineConfig) -> Result<Self> {
        Self::with_registry(&workspace_registry(), descriptor, config)
    }

    /// Spawns the fleet against a caller-provided registry.
    ///
    /// # Errors
    /// As [`Self::new`].
    pub fn with_registry(
        registry: &Registry,
        descriptor: &ProtocolDescriptor,
        config: PipelineConfig,
    ) -> Result<Self> {
        if config.shards == 0 || config.workers == 0 || config.queue_depth == 0 {
            return Err(LdpError::InvalidParameter(format!(
                "pipeline needs shards, workers, and queue_depth >= 1, got {config:?}"
            )));
        }
        let workers = config.workers.min(config.shards);
        // Shard services are built up front on this thread, so a bad
        // descriptor fails construction rather than a worker.
        let mut per_worker: Vec<Vec<(usize, CollectorService)>> =
            (0..workers).map(|_| Vec::new()).collect();
        for shard in 0..config.shards {
            per_worker[shard % workers].push((
                shard,
                CollectorService::with_registry(registry, descriptor)?,
            ));
        }

        let mut senders = Vec::with_capacity(workers);
        let mut gauges = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for services in per_worker {
            let (tx, rx) = sync_channel::<(usize, Vec<u8>)>(config.queue_depth);
            let gauge = Arc::new(QueueGauge::default());
            let worker_gauge = Arc::clone(&gauge);
            let handle = std::thread::spawn(move || run_worker(services, &rx, &worker_gauge));
            senders.push(tx);
            gauges.push(gauge);
            handles.push(handle);
        }
        Ok(Self {
            senders,
            gauges,
            handles,
            shards: config.shards,
            policy: config.policy,
        })
    }

    /// Logical shard count.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Worker thread count (may be lower than configured when capped at
    /// the shard count).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.senders.len()
    }

    /// Enqueues one batch of back-to-back frames for `shard` (routed to
    /// worker `shard % workers`). Returns whether the batch was
    /// accepted: always `true` under [`BackpressurePolicy::Block`]
    /// (possibly after parking), `false` when
    /// [`BackpressurePolicy::DropNewest`] shed it against a full queue.
    ///
    /// Batches for one shard are folded in submission order, so a
    /// driver streaming a shard's frames in several batches reproduces
    /// the single-buffer ingest exactly.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] for an out-of-range shard;
    /// [`LdpError::Malformed`] if the worker has died (its ingest error
    /// surfaces at [`finish`](Self::finish)).
    pub fn submit(&self, shard: usize, frames: Vec<u8>) -> Result<bool> {
        if shard >= self.shards {
            return Err(LdpError::InvalidParameter(format!(
                "shard {shard} outside pipeline of {} shards",
                self.shards
            )));
        }
        let w = shard % self.senders.len();
        let gauge = &self.gauges[w];
        let depth = gauge.depth.fetch_add(1, Ordering::Relaxed) + 1;
        gauge.hwm.fetch_max(depth, Ordering::Relaxed);
        match self.policy {
            BackpressurePolicy::Block => match self.senders[w].send((shard, frames)) {
                Ok(()) => Ok(true),
                Err(_) => {
                    gauge.depth.fetch_sub(1, Ordering::Relaxed);
                    Err(LdpError::Malformed(format!("pipeline worker {w} is gone")))
                }
            },
            BackpressurePolicy::DropNewest => match self.senders[w].try_send((shard, frames)) {
                Ok(()) => Ok(true),
                Err(TrySendError::Full(_)) => {
                    gauge.depth.fetch_sub(1, Ordering::Relaxed);
                    gauge.dropped.fetch_add(1, Ordering::Relaxed);
                    Ok(false)
                }
                Err(TrySendError::Disconnected(_)) => {
                    gauge.depth.fetch_sub(1, Ordering::Relaxed);
                    Err(LdpError::Malformed(format!("pipeline worker {w} is gone")))
                }
            },
        }
    }

    /// Closes the queues, joins the workers, and folds every shard
    /// service **in shard order** into one [`CollectorService`],
    /// returning it with the pipeline's [`PipelineStats`].
    ///
    /// # Errors
    /// The first worker ingest error (bad frame mid-stream), a
    /// descriptor-mismatch merge error, or a worker panic — the
    /// aggregate is discarded in every case.
    pub fn finish(self) -> Result<(CollectorService, PipelineStats)> {
        // Dropping the senders disconnects the channels; workers drain
        // what's queued and exit.
        drop(self.senders);
        let mut shard_services = Vec::with_capacity(self.shards);
        let mut workers = Vec::with_capacity(self.handles.len());
        let mut first_error: Option<(usize, LdpError)> = None;
        for (handle, gauge) in self.handles.into_iter().zip(&self.gauges) {
            let outcome = handle
                .join()
                .map_err(|_| LdpError::Malformed("pipeline worker panicked".into()))?;
            workers.push(WorkerStats {
                frames: outcome.frames,
                batches: outcome.batches,
                busy_nanos: outcome.busy_nanos,
                queue_hwm: gauge.hwm.load(Ordering::Relaxed),
                dropped_batches: gauge.dropped.load(Ordering::Relaxed),
            });
            shard_services.extend(outcome.services);
            // Keep the failure from the lowest shard — deterministic
            // regardless of worker join order.
            if let Some((shard, e)) = outcome.error {
                if first_error.as_ref().is_none_or(|(s, _)| shard < *s) {
                    first_error = Some((shard, e));
                }
            }
        }
        if let Some((shard, e)) = first_error {
            return Err(LdpError::Malformed(format!(
                "pipeline ingest failed on shard {shard}: {e}"
            )));
        }
        shard_services.sort_by_key(|&(shard, _)| shard);
        let merge_start = Instant::now();
        let mut iter = shard_services.into_iter();
        let (_, mut root) = iter.next().expect("shards >= 1 by construction");
        for (_, service) in iter {
            root.merge(service)?;
        }
        let merge_nanos = merge_start.elapsed().as_nanos() as u64;
        Ok((
            root,
            PipelineStats {
                workers,
                merge_nanos,
            },
        ))
    }
}

/// The worker loop: drain `(shard, batch)` messages, fold each batch
/// into the shard's service, keep the gauge honest. After the first
/// ingest error the worker keeps draining (so blocked producers are
/// released) but stops folding.
fn run_worker(
    mut services: Vec<(usize, CollectorService)>,
    rx: &Receiver<(usize, Vec<u8>)>,
    gauge: &QueueGauge,
) -> WorkerOutcome {
    let mut frames = 0usize;
    let mut batches = 0usize;
    let mut busy_nanos = 0u64;
    let mut error: Option<(usize, LdpError)> = None;
    while let Ok((shard, batch)) = rx.recv() {
        if error.is_none() {
            let start = Instant::now();
            let slot = services
                .iter_mut()
                .find(|(s, _)| *s == shard)
                .expect("submit routed the shard to this worker");
            match slot.1.ingest_concat(&batch) {
                Ok(n) => frames += n,
                Err(e) => {
                    frames += e.ingested;
                    error = Some((shard, e.source));
                }
            }
            busy_nanos += start.elapsed().as_nanos() as u64;
        }
        batches += 1;
        gauge.depth.fetch_sub(1, Ordering::Relaxed);
    }
    WorkerOutcome {
        services,
        frames,
        batches,
        busy_nanos,
        error,
    }
}

/// Streams an item population through a pipeline shard by shard — the
/// one-call driver the `ldp-sim` scenario and benches use: shard `i`'s
/// values are randomized with the seed `shard_seed(base_seed, i)` (so
/// the result is bit-identical to [`WireClient::frames_sharded`] +
/// sequential per-shard ingest) and submitted as `batches_per_shard`
/// batches split at frame boundaries. Only one shard's frames are alive
/// at a time, so memory stays bounded however large the population.
///
/// Returns the number of frames accepted (under
/// [`BackpressurePolicy::Block`], always `values.len()`).
///
/// # Errors
/// Anything [`WireClient::frames_for_shard`] or
/// [`CollectorPipeline::submit`] can raise.
pub fn stream_population(
    client: &WireClient,
    pipeline: &CollectorPipeline,
    values: &[u64],
    base_seed: u64,
    batches_per_shard: usize,
) -> Result<usize> {
    let shards = pipeline.shards();
    let bounds = crate::parallel::shard_bounds(values.len(), shards.min(values.len().max(1)));
    let mut accepted = 0usize;
    let mut buf = Vec::new();
    for (shard, (lo, hi)) in bounds.into_iter().enumerate() {
        buf.clear();
        client.frames_for_shard(&values[lo..hi], base_seed, shard, &mut buf)?;
        for (batch, nframes) in split_frames_counted(&buf, batches_per_shard)? {
            if pipeline.submit(shard, batch)? {
                accepted += nframes;
            }
        }
    }
    Ok(accepted)
}

/// Splits a concatenated frame stream into `parts` buffers at frame
/// boundaries, balanced by frame count — batches for queue-based ingest
/// or for reproducing "any batch split" in tests. An empty stream
/// splits into **no** batches: there is no work, so nothing is
/// enqueued (a zero-frame batch would still wake a worker and count in
/// the queue-depth accounting).
///
/// # Errors
/// Any frame-header error [`next_frame`] raises on a malformed stream.
pub fn split_frames(stream: &[u8], parts: usize) -> Result<Vec<Vec<u8>>> {
    Ok(split_frames_counted(stream, parts)?
        .into_iter()
        .map(|(batch, _)| batch)
        .collect())
}

/// [`split_frames`], with each batch's frame count alongside it.
fn split_frames_counted(stream: &[u8], parts: usize) -> Result<Vec<(Vec<u8>, usize)>> {
    let parts = parts.max(1);
    // Frame boundary offsets: starts[i]..starts[i+1] is frame i.
    let mut starts = vec![0usize];
    let mut pos = 0usize;
    while pos < stream.len() {
        next_frame(stream, &mut pos)?;
        starts.push(pos);
    }
    let nframes = starts.len() - 1;
    if nframes == 0 {
        // `parts.min(nframes.max(1))` used to clamp to one part here,
        // yielding a single `(vec![], 0)` batch that submitted an empty
        // buffer to the queue. No frames means no batches.
        return Ok(Vec::new());
    }
    let parts = parts.min(nframes);
    let mut out = Vec::with_capacity(parts);
    let per = nframes.div_ceil(parts);
    let mut frame = 0usize;
    for _ in 0..parts {
        let hi_frame = (frame + per).min(nframes);
        out.push((
            stream[starts[frame]..starts[hi_frame]].to_vec(),
            hi_frame - frame,
        ));
        frame = hi_frame;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_core::protocol::{MechanismKind, ProtocolDescriptor};

    fn olhc(d: u64) -> ProtocolDescriptor {
        ProtocolDescriptor::builder(MechanismKind::CohortLocalHashing)
            .domain_size(d)
            .epsilon(1.0)
            .cohorts(64)
            .build()
            .unwrap()
    }

    #[test]
    fn pipeline_matches_single_service_for_integer_counters() {
        let desc = olhc(32);
        let client = WireClient::from_descriptor(&desc).unwrap();
        let values: Vec<u64> = (0..3000).map(|i| i % 32).collect();

        let mut reference = CollectorService::from_descriptor(&desc).unwrap();
        for buf in &client.frames_sharded(&values, 42, 6).unwrap() {
            reference.ingest_concat(buf).unwrap();
        }

        for workers in [1usize, 2, 5] {
            let pipeline = CollectorPipeline::new(
                &desc,
                PipelineConfig {
                    shards: 6,
                    workers,
                    queue_depth: 4,
                    policy: BackpressurePolicy::Block,
                },
            )
            .unwrap();
            let n = stream_population(&client, &pipeline, &values, 42, 3).unwrap();
            assert_eq!(n, values.len());
            let (merged, stats) = pipeline.finish().unwrap();
            assert_eq!(stats.total_frames(), values.len());
            assert_eq!(stats.dropped_batches(), 0);
            assert!(stats.queue_hwm() >= 1);
            assert_eq!(merged.reports(), reference.reports());
            let (a, b) = (merged.estimates(), reference.estimates());
            assert_eq!(
                a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn drop_newest_accounts_for_every_batch() {
        let desc = olhc(16);
        let client = WireClient::from_descriptor(&desc).unwrap();
        let values: Vec<u64> = (0..800).map(|i| i % 16).collect();
        let pipeline = CollectorPipeline::new(
            &desc,
            PipelineConfig {
                shards: 4,
                workers: 2,
                queue_depth: 1,
                policy: BackpressurePolicy::DropNewest,
            },
        )
        .unwrap();

        // Track which batches were accepted; dropped ones must be
        // absent from the aggregate and present in the counters.
        let buffers = client.frames_sharded(&values, 9, 4).unwrap();
        let mut accepted = Vec::new();
        let mut submitted = 0usize;
        for (shard, buf) in buffers.iter().enumerate() {
            for batch in split_frames(buf, 8).unwrap() {
                submitted += 1;
                if pipeline.submit(shard, batch.clone()).unwrap() {
                    accepted.push(batch);
                }
            }
        }
        let (merged, stats) = pipeline.finish().unwrap();
        assert_eq!(
            stats.dropped_batches() + accepted.len(),
            submitted,
            "every batch is either folded or counted as shed"
        );
        let mut reference = CollectorService::from_descriptor(&desc).unwrap();
        for batch in &accepted {
            reference.ingest_concat(batch).unwrap();
        }
        assert_eq!(merged.reports(), reference.reports());
        assert_eq!(merged.estimates(), reference.estimates());
    }

    #[test]
    fn bad_frame_surfaces_at_finish() {
        let desc = olhc(16);
        let pipeline = CollectorPipeline::new(&desc, PipelineConfig::default()).unwrap();
        pipeline.submit(0, vec![0xFF, 0x00, 0x01]).unwrap();
        assert!(pipeline.finish().is_err());
    }

    #[test]
    fn rejects_degenerate_configs() {
        let desc = olhc(16);
        for bad in [
            PipelineConfig {
                shards: 0,
                ..PipelineConfig::default()
            },
            PipelineConfig {
                workers: 0,
                ..PipelineConfig::default()
            },
            PipelineConfig {
                queue_depth: 0,
                ..PipelineConfig::default()
            },
        ] {
            assert!(CollectorPipeline::new(&desc, bad).is_err());
        }
        let p = CollectorPipeline::new(&desc, PipelineConfig::default()).unwrap();
        assert!(p.submit(99, Vec::new()).is_err());
        let (svc, _) = p.finish().unwrap();
        assert_eq!(svc.reports(), 0);
    }

    #[test]
    fn split_frames_preserves_bytes_and_boundaries() {
        let desc = olhc(16);
        let client = WireClient::from_descriptor(&desc).unwrap();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
        let mut stream = Vec::new();
        for v in 0..10u64 {
            client.randomize_item(v, &mut rng, &mut stream).unwrap();
        }
        for parts in [1usize, 3, 10, 25] {
            let split = split_frames(&stream, parts).unwrap();
            assert_eq!(split.concat(), stream, "parts={parts}");
            assert!(split.len() <= parts);
            // Every piece is itself a valid frame stream.
            for piece in &split {
                let mut svc = CollectorService::from_descriptor(&desc).unwrap();
                svc.ingest_concat(piece).unwrap();
            }
        }
    }
}
