//! Event-time sliding windows over the collector service: a ring of
//! per-window aggregate deltas with **subtractive retirement** and
//! rolling longitudinal privacy accounting.
//!
//! The mechanisms the tutorial surveys are framed for one-shot
//! collection, but the deployments it describes live on windows:
//! "popular home pages over the last 24 hours" advancing as traffic
//! streams in. [`WindowRing`] provides that shape on top of the wire
//! service layer:
//!
//! * **One [`CollectorService`] delta per event-time window.** Frames
//!   carry a client event timestamp; `timestamp / window_len` buckets
//!   them into a window. Each window's delta stays sketch-sized — per
//!   PAPERS.md's itemset lower bounds, raw report retention is exactly
//!   what this layer avoids.
//! * **A maintained running total.** Every frame folds into both its
//!   window's delta and the total, so the current sliding-window
//!   estimate is a read of one aggregator, not a merge of `W`.
//! * **Retirement by subtraction.** When the ring advances past its
//!   horizon, the expired window's delta is removed from the total with
//!   [`CollectorService::subtract`] — the exact inverse of `merge`, so
//!   for every count-based mechanism the total is **bit-identical** to
//!   one rebuilt from the live windows, at `O(state)` cost instead of
//!   `O(W × state)`. Mechanisms whose state has no exact inverse (SHE's
//!   floating-point sums) refuse with
//!   [`LdpError::NotSubtractive`], and the ring transparently falls
//!   back to the rebuild; [`WindowStats`] records which path ran.
//! * **Optional exponential decay.** With a decay factor `λ`,
//!   [`WindowRing::decayed_estimates`] weights window `w`'s estimate by
//!   `λ^age(w)` — recency weighting without touching the unweighted
//!   total.
//! * **Durability.** The whole ring — configuration, every live delta,
//!   the total, the stats — checkpoints to one versioned BLOB
//!   (`state_tag::WINDOW_RING`) embedding the service layer's own
//!   checkpoints, so a windowed collector restarts exactly where it
//!   crashed.
//!
//! [`LongitudinalAccountant`] completes the longitudinal story: privacy
//! loss under repeated collection composes sequentially, so a device
//! reporting every window spends `ε_window` per window. Deployed systems
//! meter that spend against a per-*period* allowance; the accountant
//! keeps one [`PrivacyBudget`] per device, draws on each charged window,
//! and **releases** charges whose window has aged out of the accounting
//! horizon — the budget-side mirror of the ring's subtractive
//! retirement.
//!
//! # Example
//! ```
//! use ldp_core::protocol::{MechanismKind, ProtocolDescriptor};
//! use ldp_workloads::window::{WindowConfig, WindowRing};
//! use ldp_workloads::WireClient;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let desc = ProtocolDescriptor::builder(MechanismKind::CohortLocalHashing)
//!     .domain_size(64)
//!     .epsilon(2.0)
//!     .cohorts(16)
//!     .build()
//!     .unwrap();
//! let mut ring = WindowRing::new(&desc, WindowConfig::new(3600, 24)).unwrap();
//! let client = WireClient::from_descriptor(&desc).unwrap();
//! let mut rng = StdRng::seed_from_u64(7);
//! let mut frame = Vec::new();
//! for hour in 0..48u64 {
//!     for user in 0..50u64 {
//!         frame.clear();
//!         client.randomize_item(user % 8, &mut rng, &mut frame).unwrap();
//!         ring.ingest(hour * 3600 + user, &frame).unwrap();
//!     }
//! }
//! // 48 hourly windows streamed in; only the last 24 are live.
//! assert_eq!(ring.live_windows(), 24);
//! assert_eq!(ring.reports(), 24 * 50);
//! assert_eq!(ring.stats().retired_subtract, 24);
//! ```

use std::collections::{BTreeMap, VecDeque};

use ldp_core::protocol::ProtocolDescriptor;
use ldp_core::snapshot::{state_tag, SNAPSHOT_VERSION};
use ldp_core::wire::{put_f64_le, put_u64_le, put_uvarint, WireReader};
use ldp_core::{Epsilon, LdpError, PrivacyBudget, Result};

use crate::service::{CollectorService, IngestError};

/// Configuration of a [`WindowRing`]: event-time bucketing, horizon, and
/// optional decay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowConfig {
    /// Event-time length of one window, in the same unit as the
    /// timestamps passed to [`WindowRing::ingest`] (seconds, for the
    /// `ldp-sim` trace). A frame at time `t` lands in window
    /// `t / window_len`.
    pub window_len: u64,
    /// Number of live windows the ring keeps — the sliding horizon. The
    /// running total always covers exactly the live windows.
    pub windows: usize,
    /// Optional exponential decay factor `λ ∈ (0, 1]` for
    /// [`WindowRing::decayed_estimates`]: window `w` is weighted
    /// `λ^age(w)`, newest window age 0.
    pub decay: Option<f64>,
}

impl WindowConfig {
    /// A config with no decay weighting.
    pub fn new(window_len: u64, windows: usize) -> Self {
        Self {
            window_len,
            windows,
            decay: None,
        }
    }

    /// Adds a decay factor (validated by [`WindowRing::new`]).
    #[must_use]
    pub fn with_decay(mut self, lambda: f64) -> Self {
        self.decay = Some(lambda);
        self
    }

    fn validate(&self) -> Result<()> {
        if self.window_len == 0 {
            return Err(LdpError::InvalidParameter(
                "window_len must be positive".into(),
            ));
        }
        if self.windows == 0 {
            return Err(LdpError::InvalidParameter(
                "ring must keep at least one window".into(),
            ));
        }
        if let Some(lambda) = self.decay {
            if !(lambda > 0.0 && lambda <= 1.0) {
                return Err(LdpError::InvalidParameter(format!(
                    "decay factor must be in (0, 1], got {lambda}"
                )));
            }
        }
        Ok(())
    }
}

/// Counters of what a [`WindowRing`] has done — the observability the
/// retirement cost story needs (how often the `O(state)` subtract ran
/// versus the `O(W × state)` rebuild fallback).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Report frames folded into the ring (into a window delta *and* the
    /// running total).
    pub frames_ingested: u64,
    /// Frames (or absorbed delta reports) dropped because their event
    /// time predates the ring's watermark (the oldest live window).
    pub late_dropped: u64,
    /// Windows retired by exact subtraction from the running total.
    pub retired_subtract: u64,
    /// Windows retired through the rebuild fallback (the mechanism's
    /// state refused subtraction, so the total was re-merged from the
    /// live deltas).
    pub retired_rebuild: u64,
    /// Windows dropped wholesale because event time jumped past the
    /// entire horizon (the total resets; nothing to subtract).
    pub retired_wholesale: u64,
}

/// A sliding ring of per-window aggregate deltas plus their running
/// total. See the [module docs](self) for the design.
#[derive(Debug)]
pub struct WindowRing {
    desc: ProtocolDescriptor,
    config: WindowConfig,
    /// Live window deltas, oldest first, contiguous in bucket index:
    /// `live[i]` covers bucket `front_bucket + i`.
    live: VecDeque<(u64, CollectorService)>,
    /// Merge of every live delta, maintained incrementally.
    total: CollectorService,
    stats: WindowStats,
}

impl WindowRing {
    /// Builds an empty ring for `descriptor` (via the full workspace
    /// registry).
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] for a bad config, plus whatever
    /// [`CollectorService::from_descriptor`] surfaces for the
    /// descriptor.
    pub fn new(descriptor: &ProtocolDescriptor, config: WindowConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self {
            desc: descriptor.clone(),
            config,
            live: VecDeque::with_capacity(config.windows + 1),
            total: CollectorService::from_descriptor(descriptor)?,
            stats: WindowStats::default(),
        })
    }

    /// The descriptor every window aggregates for.
    pub fn descriptor(&self) -> &ProtocolDescriptor {
        &self.desc
    }

    /// The ring configuration.
    pub fn config(&self) -> &WindowConfig {
        &self.config
    }

    /// Operation counters so far.
    pub fn stats(&self) -> &WindowStats {
        &self.stats
    }

    /// Number of live windows (0 until the first ingest, then between 1
    /// and `config.windows`).
    pub fn live_windows(&self) -> usize {
        self.live.len()
    }

    /// Bucket index of the newest live window, if any.
    pub fn newest_bucket(&self) -> Option<u64> {
        self.live.back().map(|(b, _)| *b)
    }

    /// Bucket index of the oldest live window — the ring's lateness
    /// watermark — if any.
    pub fn oldest_bucket(&self) -> Option<u64> {
        self.live.front().map(|(b, _)| *b)
    }

    /// Reports currently covered by the running total (the live
    /// windows' reports; retired windows no longer count).
    pub fn reports(&self) -> usize {
        self.total.reports()
    }

    /// Iterates the live window deltas oldest first as
    /// `(bucket, delta)` — per-window drill-down, and the raw material
    /// for verifying the total against a from-scratch rebuild.
    pub fn windows(&self) -> impl Iterator<Item = (u64, &CollectorService)> + '_ {
        self.live.iter().map(|(b, w)| (*b, w))
    }

    /// The maintained running total over the live windows.
    pub fn total(&self) -> &CollectorService {
        &self.total
    }

    /// The window bucket a timestamp falls in.
    pub fn bucket_of(&self, timestamp: u64) -> u64 {
        timestamp / self.config.window_len
    }

    /// Ingests one report frame stamped with its client event time.
    /// Returns `Ok(true)` when folded in, `Ok(false)` when the frame is
    /// **late** — its bucket predates the oldest live window — and was
    /// counted in [`WindowStats::late_dropped`] instead (late data is a
    /// fact of event-time systems, not an error).
    ///
    /// Ingesting may advance the ring: a frame from a new bucket opens
    /// that window (plus empty windows for any skipped buckets) and
    /// retires whatever falls off the horizon.
    ///
    /// # Errors
    /// Frame validation errors from [`CollectorService::ingest`]; the
    /// retirement errors described on [`advance_to`](Self::advance_to).
    /// The ring state is unchanged on a frame error.
    pub fn ingest(&mut self, timestamp: u64, frame: &[u8]) -> Result<bool> {
        let bucket = self.bucket_of(timestamp);
        if self.is_late(bucket) {
            self.stats.late_dropped += 1;
            return Ok(false);
        }
        self.advance_to_bucket(bucket)?;
        let idx = self.live_index(bucket);
        self.live[idx].1.ingest(frame)?;
        // Same frame, same stateless validation — cannot fail after the
        // window accepted it, so window and total never diverge.
        self.total.ingest(frame)?;
        self.stats.frames_ingested += 1;
        Ok(true)
    }

    /// Ingests a buffer of back-to-back frames that all share one event
    /// time (the batched transport shape: a collection round's payload
    /// for one window). Returns how many frames were folded in; late
    /// buffers are dropped whole (counted per frame) and return
    /// `Ok(0)`.
    ///
    /// # Errors
    /// Stops at the first bad frame like
    /// [`CollectorService::ingest_concat`]; the frames before it remain
    /// ingested in both the window and the total (validation is
    /// deterministic, so both stop at the same frame).
    pub fn ingest_concat(
        &mut self,
        timestamp: u64,
        stream: &[u8],
    ) -> std::result::Result<usize, IngestError> {
        let bucket = self.bucket_of(timestamp);
        if self.is_late(bucket) {
            let frames = count_frames(stream);
            self.stats.late_dropped += frames;
            return Ok(0);
        }
        self.advance_to_bucket(bucket)
            .map_err(|source| IngestError {
                ingested: 0,
                source,
            })?;
        let idx = self.live_index(bucket);
        let window_res = self.live[idx].1.ingest_concat(stream);
        // The total must ingest the same stream even when the window
        // stopped at a bad frame: validation is deterministic, so both
        // accept the same prefix, and skipping the total's pass would
        // leave it missing frames the window kept — breaking the
        // total == merge(live windows) invariant.
        let total_res = self.total.ingest_concat(stream);
        let window_n = match &window_res {
            Ok(n) => *n,
            Err(e) => e.ingested,
        };
        let total_n = match &total_res {
            Ok(n) => *n,
            Err(e) => e.ingested,
        };
        self.stats.frames_ingested += window_n.min(total_n) as u64;
        window_res.and(total_res)
    }

    /// Absorbs a pre-aggregated window delta — the integration point for
    /// the concurrent collector pipeline, whose `finish()` yields one
    /// [`CollectorService`] per collection round. The delta is merged
    /// into the window covering `timestamp` and into the running total.
    /// Returns `Ok(false)` (counting every report as late-dropped) when
    /// the bucket predates the watermark.
    ///
    /// # Errors
    /// [`LdpError::Malformed`] on descriptor mismatch; the retirement
    /// errors described on [`advance_to`](Self::advance_to).
    pub fn absorb(&mut self, timestamp: u64, delta: CollectorService) -> Result<bool> {
        if delta.descriptor() != &self.desc {
            return Err(LdpError::Malformed(format!(
                "absorb: descriptor mismatch ({} vs {})",
                delta.descriptor().kind().name(),
                self.desc.kind().name()
            )));
        }
        let bucket = self.bucket_of(timestamp);
        let reports = delta.reports() as u64;
        if self.is_late(bucket) {
            self.stats.late_dropped += reports;
            return Ok(false);
        }
        self.advance_to_bucket(bucket)?;
        let copy = CollectorService::from_checkpoint(&delta.checkpoint())?;
        let idx = self.live_index(bucket);
        self.live[idx].1.merge(copy)?;
        self.total.merge(delta)?;
        self.stats.frames_ingested += reports;
        Ok(true)
    }

    /// Advances event time to `timestamp` with no traffic: opens the
    /// window covering it (plus empties for skipped buckets) and retires
    /// everything that falls off the horizon — the call a quiet stream
    /// makes so estimates age out on schedule.
    ///
    /// # Errors
    /// Retirement propagates [`LdpError::StateMismatch`] only if a
    /// retired delta was somehow not a sub-aggregate of the total (an
    /// invariant breach, not a reachable state through this API);
    /// [`LdpError::NotSubtractive`] never escapes — it triggers the
    /// rebuild fallback internally.
    pub fn advance_to(&mut self, timestamp: u64) -> Result<()> {
        let bucket = self.bucket_of(timestamp);
        if !self.is_late(bucket) {
            self.advance_to_bucket(bucket)?;
        }
        Ok(())
    }

    /// Estimates over the mechanism's output domain for the current
    /// sliding window (the running total — one aggregator read).
    pub fn estimates(&self) -> Vec<f64> {
        self.total.estimates()
    }

    /// Estimates for a subset of items, against the running total.
    ///
    /// # Errors
    /// As [`CollectorService::estimate_items`].
    pub fn estimate_items(&self, items: &[u64]) -> Result<Vec<f64>> {
        self.total.estimate_items(items)
    }

    /// Recency-weighted estimates: `Σ_w λ^age(w) · estimate(delta_w)`
    /// over the live windows, newest window age 0. The unweighted
    /// sliding-window estimate stays available via
    /// [`estimates`](Self::estimates); with `λ = 1` the two agree up to
    /// float reassociation (per-window debias sums versus one debiased
    /// total).
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] if the ring was configured without
    /// a decay factor.
    pub fn decayed_estimates(&self) -> Result<Vec<f64>> {
        let lambda = self.config.decay.ok_or_else(|| {
            LdpError::InvalidParameter("ring was configured without a decay factor".into())
        })?;
        let newest = match self.newest_bucket() {
            Some(b) => b,
            None => return Ok(self.total.estimates()),
        };
        let mut acc: Option<Vec<f64>> = None;
        for (bucket, window) in &self.live {
            let age = (newest - bucket) as i32;
            let weight = lambda.powi(age);
            let est = window.estimates();
            match acc.as_mut() {
                None => {
                    let mut first = est;
                    for e in &mut first {
                        *e *= weight;
                    }
                    acc = Some(first);
                }
                Some(a) => {
                    for (x, e) in a.iter_mut().zip(&est) {
                        *x += weight * e;
                    }
                }
            }
        }
        Ok(acc.unwrap_or_else(|| self.total.estimates()))
    }

    /// Serializes the whole ring — config, stats, every live delta, the
    /// running total — into one versioned BLOB
    /// (`state_tag::WINDOW_RING`) built from embedded
    /// [`CollectorService::checkpoint`] BLOBs.
    #[must_use]
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        put_u64_le(&mut payload, self.config.window_len);
        put_uvarint(&mut payload, self.config.windows as u64);
        match self.config.decay {
            Some(lambda) => {
                payload.push(1);
                put_f64_le(&mut payload, lambda);
            }
            None => payload.push(0),
        }
        put_u64_le(&mut payload, self.stats.frames_ingested);
        put_u64_le(&mut payload, self.stats.late_dropped);
        put_u64_le(&mut payload, self.stats.retired_subtract);
        put_u64_le(&mut payload, self.stats.retired_rebuild);
        put_u64_le(&mut payload, self.stats.retired_wholesale);
        put_uvarint(&mut payload, self.live.len() as u64);
        for (bucket, window) in &self.live {
            put_u64_le(&mut payload, *bucket);
            let blob = window.checkpoint();
            put_uvarint(&mut payload, blob.len() as u64);
            payload.extend_from_slice(&blob);
        }
        let blob = self.total.checkpoint();
        put_uvarint(&mut payload, blob.len() as u64);
        payload.extend_from_slice(&blob);

        let mut out = Vec::with_capacity(payload.len() + 12);
        out.push(SNAPSHOT_VERSION);
        out.push(state_tag::WINDOW_RING);
        put_uvarint(&mut out, payload.len() as u64);
        out.extend_from_slice(&payload);
        out
    }

    /// Reconstructs a ring from a [`checkpoint`](Self::checkpoint)
    /// BLOB, re-validating structure, configuration, window contiguity,
    /// and the total-covers-live-windows invariant — damaged or forged
    /// bytes degrade to errors, never a panic.
    ///
    /// # Errors
    /// Any [`LdpError`] for damaged bytes, foreign versions or tags, a
    /// config that fails validation, embedded checkpoints with
    /// mismatched descriptors, non-contiguous window buckets, or a total
    /// whose report count disagrees with the live windows.
    pub fn from_checkpoint(bytes: &[u8]) -> Result<Self> {
        let mut r = WireReader::new(bytes);
        let version = r.u8()?;
        if version != SNAPSHOT_VERSION {
            return Err(LdpError::VersionMismatch {
                got: version,
                expected: SNAPSHOT_VERSION,
            });
        }
        let tag = r.u8()?;
        if tag != state_tag::WINDOW_RING {
            return Err(LdpError::ReportTypeMismatch {
                got: tag,
                expected: state_tag::WINDOW_RING,
            });
        }
        let len = r.uvarint()?;
        let len = usize::try_from(len)
            .map_err(|_| LdpError::Malformed(format!("ring checkpoint length {len} overflows")))?;
        let payload = r.bytes(len)?;
        r.finish()?;

        let mut pr = WireReader::new(payload);
        let window_len = pr.u64_le()?;
        let windows = usize::try_from(pr.uvarint()?)
            .map_err(|_| LdpError::Malformed("ring window count overflows".into()))?;
        let decay = match pr.u8()? {
            0 => None,
            1 => Some(pr.f64_le()?),
            other => {
                return Err(LdpError::Malformed(format!(
                    "ring decay flag must be 0 or 1, got {other}"
                )))
            }
        };
        let config = WindowConfig {
            window_len,
            windows,
            decay,
        };
        config.validate()?;
        let stats = WindowStats {
            frames_ingested: pr.u64_le()?,
            late_dropped: pr.u64_le()?,
            retired_subtract: pr.u64_le()?,
            retired_rebuild: pr.u64_le()?,
            retired_wholesale: pr.u64_le()?,
        };
        let live_count = usize::try_from(pr.uvarint()?)
            .map_err(|_| LdpError::Malformed("ring live-window count overflows".into()))?;
        if live_count > windows {
            return Err(LdpError::Malformed(format!(
                "ring checkpoint carries {live_count} live windows but a horizon of {windows}"
            )));
        }
        let mut live = VecDeque::with_capacity(windows + 1);
        let mut live_reports = 0usize;
        for i in 0..live_count {
            let bucket = pr.u64_le()?;
            if let Some(&(front, _)) = live.front() {
                if bucket != front + i as u64 {
                    return Err(LdpError::Malformed(
                        "ring checkpoint windows are not contiguous".into(),
                    ));
                }
            }
            let blob_len = usize::try_from(pr.uvarint()?)
                .map_err(|_| LdpError::Malformed("window checkpoint length overflows".into()))?;
            let window = CollectorService::from_checkpoint(pr.bytes(blob_len)?)?;
            live_reports += window.reports();
            live.push_back((bucket, window));
        }
        let blob_len = usize::try_from(pr.uvarint()?)
            .map_err(|_| LdpError::Malformed("total checkpoint length overflows".into()))?;
        let total = CollectorService::from_checkpoint(pr.bytes(blob_len)?)?;
        pr.finish()?;

        let desc = total.descriptor().clone();
        if live.iter().any(|(_, w)| w.descriptor() != &desc) {
            return Err(LdpError::StateMismatch(
                "ring checkpoint mixes descriptors across windows".into(),
            ));
        }
        if total.reports() != live_reports {
            return Err(LdpError::StateMismatch(format!(
                "ring total covers {} reports but live windows carry {live_reports}",
                total.reports()
            )));
        }
        Ok(Self {
            desc,
            config,
            live,
            total,
            stats,
        })
    }

    /// Replaces this ring's state with a checkpoint taken from a ring
    /// with the **same** descriptor and configuration.
    ///
    /// # Errors
    /// As [`from_checkpoint`](Self::from_checkpoint), plus
    /// [`LdpError::StateMismatch`] when descriptor or config differ; the
    /// ring is unchanged on error.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<()> {
        let other = Self::from_checkpoint(bytes)?;
        if other.desc != self.desc {
            return Err(LdpError::StateMismatch(
                "ring checkpoint was taken under a different descriptor".into(),
            ));
        }
        if other.config != self.config {
            return Err(LdpError::StateMismatch(
                "ring checkpoint was taken under a different window configuration".into(),
            ));
        }
        *self = other;
        Ok(())
    }

    /// True when `bucket` predates the oldest live window (the ring's
    /// monotone watermark).
    fn is_late(&self, bucket: u64) -> bool {
        matches!(self.oldest_bucket(), Some(front) if bucket < front)
    }

    /// Index of `bucket` in the contiguous live deque. Callers advance
    /// first, so the bucket is always present.
    fn live_index(&self, bucket: u64) -> usize {
        let front = self.live.front().map(|(b, _)| *b).expect("ring advanced");
        (bucket - front) as usize
    }

    /// Opens windows up to and including `bucket`, retiring everything
    /// that falls off the horizon. `bucket` is never late here (callers
    /// check the watermark first).
    fn advance_to_bucket(&mut self, bucket: u64) -> Result<()> {
        let newest = match self.newest_bucket() {
            None => {
                self.live
                    .push_back((bucket, CollectorService::from_descriptor(&self.desc)?));
                return Ok(());
            }
            Some(b) => b,
        };
        if bucket <= newest {
            return Ok(());
        }
        if bucket - newest > self.config.windows as u64 {
            // Event time jumped past the whole horizon: every live
            // window expires at once, so drop them wholesale and restart
            // the total from empty — nothing to subtract. Empty windows
            // are opened back to `bucket − windows + 1` so the watermark
            // lands exactly where the incremental path would put it:
            // in-horizon-but-older traffic after a quiet gap is still
            // accepted, not dropped as late.
            self.stats.retired_wholesale += self.live.len() as u64;
            self.live.clear();
            self.total = CollectorService::from_descriptor(&self.desc)?;
            let start = bucket.saturating_sub(self.config.windows as u64 - 1);
            for b in start..=bucket {
                self.live
                    .push_back((b, CollectorService::from_descriptor(&self.desc)?));
            }
            return Ok(());
        }
        for b in newest + 1..=bucket {
            self.live
                .push_back((b, CollectorService::from_descriptor(&self.desc)?));
            while self.live.len() > self.config.windows {
                self.retire_front()?;
            }
        }
        Ok(())
    }

    /// Retires the oldest live window: exact subtraction from the total
    /// when the mechanism supports it, rebuild fallback when it refuses.
    fn retire_front(&mut self) -> Result<()> {
        let (_, window) = self.live.pop_front().expect("ring has a window to retire");
        if window.reports() == 0 {
            // An empty delta is trivially subtractable (it changes no
            // counter), including from states that refuse subtraction.
            self.stats.retired_subtract += 1;
            return Ok(());
        }
        match self.total.subtract(&window) {
            Ok(()) => {
                self.stats.retired_subtract += 1;
                Ok(())
            }
            Err(LdpError::NotSubtractive(_)) => {
                self.rebuild_total()?;
                self.stats.retired_rebuild += 1;
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Rebuilds the running total by re-merging every live delta in
    /// bucket order (the deterministic fallback for non-subtractive
    /// states; `O(W × state)` where the subtract path is `O(state)`).
    fn rebuild_total(&mut self) -> Result<()> {
        let mut total = CollectorService::from_descriptor(&self.desc)?;
        for (_, window) in &self.live {
            total.merge(CollectorService::from_checkpoint(&window.checkpoint())?)?;
        }
        self.total = total;
        Ok(())
    }
}

/// Counts the frames in a concatenated stream without decoding payloads
/// (frame headers are self-delimiting); damaged tails count as one
/// frame, matching where `ingest_concat` would stop.
fn count_frames(stream: &[u8]) -> u64 {
    let mut pos = 0usize;
    let mut frames = 0u64;
    while pos < stream.len() {
        match ldp_core::wire::next_frame(stream, &mut pos) {
            Ok(_) => frames += 1,
            Err(_) => return frames + 1,
        }
    }
    frames
}

/// Per-device longitudinal privacy accounting over a rolling window
/// horizon: one [`PrivacyBudget`] per device, charged `ε_window` per
/// contributed window, with charges **released** once their window ages
/// out of the horizon — the accounting mirror of the ring's subtractive
/// retirement. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct LongitudinalAccountant {
    per_window: Epsilon,
    horizon: u64,
    allowance: Epsilon,
    devices: BTreeMap<u64, DeviceLedger>,
}

#[derive(Debug, Clone)]
struct DeviceLedger {
    budget: PrivacyBudget,
    /// Buckets this device has been charged for, oldest first.
    charged: VecDeque<u64>,
}

impl LongitudinalAccountant {
    /// Builds an accountant enforcing "at most `allowance` of ε spent
    /// within any `horizon` consecutive windows, at `per_window` per
    /// contributed window" for every device.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] if `horizon` is zero or a single
    /// window's charge already exceeds the allowance.
    pub fn new(allowance: Epsilon, per_window: Epsilon, horizon: usize) -> Result<Self> {
        if horizon == 0 {
            return Err(LdpError::InvalidParameter(
                "accounting horizon must cover at least one window".into(),
            ));
        }
        if per_window.value() > allowance.value() + 1e-9 {
            return Err(LdpError::InvalidParameter(format!(
                "per-window charge {per_window} exceeds the allowance {allowance}"
            )));
        }
        Ok(Self {
            per_window,
            horizon: horizon as u64,
            allowance,
            devices: BTreeMap::new(),
        })
    }

    /// Charges `device` for contributing to window `bucket`. Charging is
    /// idempotent per `(device, bucket)` — Microsoft-style memoized
    /// clients send one randomized answer per window, so a repeat charge
    /// is the same disclosure, not a new one. Charges may arrive out of
    /// event-time order: the ring's watermark admits any in-horizon
    /// bucket, not just monotone ones, so the accountant does too. The
    /// rolling horizon is anchored at the newest bucket the device has
    /// been charged for (or `bucket`, if newer); before drawing, charges
    /// that have scrolled out of it are released back to the device's
    /// budget, and a `bucket` that itself predates the whole horizon is
    /// a budget no-op — its charge would be released in the same breath.
    ///
    /// # Errors
    /// [`LdpError::BudgetExhausted`] when the device's rolling spend
    /// cannot absorb another window — the caller should skip (not
    /// collect) this device for this window. No charge is recorded
    /// (charges that had already scrolled out of the horizon are still
    /// released), and a never-charged device gains no ledger.
    pub fn try_charge(&mut self, device: u64, bucket: u64) -> Result<()> {
        if !self.devices.contains_key(&device) {
            // First charge: `new` guarantees one window's charge fits a
            // fresh allowance, and drawing before inserting means a
            // failed draw can never invent a zero-charge device.
            let mut budget = PrivacyBudget::new(self.allowance);
            budget.draw(self.per_window.value())?;
            self.devices.insert(
                device,
                DeviceLedger {
                    budget,
                    charged: VecDeque::from([bucket]),
                },
            );
            return Ok(());
        }
        let ledger = self.devices.get_mut(&device).expect("device has a ledger");
        if ledger.charged.contains(&bucket) {
            return Ok(());
        }
        let newest = ledger.charged.back().map_or(bucket, |&b| b.max(bucket));
        let oldest_in_horizon = newest.saturating_sub(self.horizon - 1);
        while matches!(ledger.charged.front(), Some(&b) if b < oldest_in_horizon) {
            ledger.charged.pop_front();
            ledger
                .budget
                .release(self.per_window.value())
                .expect("released charge was drawn");
        }
        if bucket < oldest_in_horizon {
            return Ok(());
        }
        ledger.budget.draw(self.per_window.value())?;
        // Keep `charged` sorted so horizon releases pop oldest-first
        // even when in-horizon charges arrived out of order.
        let pos = ledger.charged.partition_point(|&b| b < bucket);
        ledger.charged.insert(pos, bucket);
        Ok(())
    }

    /// ε the device is currently spending inside its rolling horizon
    /// (0 for devices never charged).
    pub fn spent(&self, device: u64) -> f64 {
        self.devices.get(&device).map_or(0.0, |l| l.budget.spent())
    }

    /// Devices with at least one charge on record.
    pub fn devices(&self) -> usize {
        self.devices.len()
    }

    /// The per-device allowance this accountant enforces.
    pub fn allowance(&self) -> Epsilon {
        self.allowance
    }

    /// The ε charged per contributed window.
    pub fn per_window(&self) -> Epsilon {
        self.per_window
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::WireClient;
    use ldp_core::protocol::{MechanismKind, ProtocolDescriptor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn olhc_descriptor(d: u64) -> ProtocolDescriptor {
        ProtocolDescriptor::builder(MechanismKind::CohortLocalHashing)
            .domain_size(d)
            .epsilon(2.0)
            .cohorts(32)
            .build()
            .unwrap()
    }

    fn she_descriptor(d: u64) -> ProtocolDescriptor {
        ProtocolDescriptor::builder(MechanismKind::SummationHistogram)
            .domain_size(d)
            .epsilon(1.0)
            .build()
            .unwrap()
    }

    /// Frames for `count` reports at one event time, as one stream.
    fn stream(client: &WireClient, rng: &mut StdRng, d: u64, count: usize) -> Vec<u8> {
        let mut out = Vec::new();
        for i in 0..count {
            client.randomize_item(i as u64 % d, rng, &mut out).unwrap();
        }
        out
    }

    #[test]
    fn ring_buckets_by_event_time_and_retires() {
        let desc = olhc_descriptor(16);
        let client = WireClient::from_descriptor(&desc).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut ring = WindowRing::new(&desc, WindowConfig::new(10, 3)).unwrap();

        for t in [0u64, 11, 22, 33, 44] {
            let s = stream(&client, &mut rng, 16, 5);
            assert_eq!(ring.ingest_concat(t, &s).unwrap(), 5);
        }
        // 5 buckets seen, horizon 3: buckets 2, 3, 4 live.
        assert_eq!(ring.live_windows(), 3);
        assert_eq!(ring.oldest_bucket(), Some(2));
        assert_eq!(ring.newest_bucket(), Some(4));
        assert_eq!(ring.reports(), 15);
        assert_eq!(ring.stats().retired_subtract, 2);
        assert_eq!(ring.stats().retired_rebuild, 0);
        assert_eq!(ring.stats().frames_ingested, 25);
    }

    #[test]
    fn retired_total_is_bit_identical_to_rebuild() {
        let desc = olhc_descriptor(32);
        let client = WireClient::from_descriptor(&desc).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let mut ring = WindowRing::new(&desc, WindowConfig::new(100, 4)).unwrap();

        for t in (0..12u64).map(|i| i * 100 + 7) {
            let s = stream(&client, &mut rng, 32, 20);
            ring.ingest_concat(t, &s).unwrap();
        }
        // Rebuild the total from the live windows and compare state
        // BLOBs: subtraction must be the exact inverse of merge.
        let mut rebuilt = CollectorService::from_descriptor(&desc).unwrap();
        for i in 0..ring.live_windows() {
            let (_, w) = &ring.live[i];
            rebuilt
                .merge(CollectorService::from_checkpoint(&w.checkpoint()).unwrap())
                .unwrap();
        }
        assert_eq!(ring.total.checkpoint(), rebuilt.checkpoint());
        assert!(ring.stats().retired_subtract >= 8);
    }

    #[test]
    fn she_falls_back_to_rebuild_and_stays_consistent() {
        let desc = she_descriptor(8);
        let client = WireClient::from_descriptor(&desc).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let mut ring = WindowRing::new(&desc, WindowConfig::new(10, 2)).unwrap();

        for t in [5u64, 15, 25, 35] {
            let mut s = Vec::new();
            for i in 0..6u64 {
                client.randomize_item(i % 8, &mut rng, &mut s).unwrap();
            }
            ring.ingest_concat(t, &s).unwrap();
        }
        // Two retirements, both through the rebuild path.
        assert_eq!(ring.stats().retired_rebuild, 2);
        assert_eq!(ring.stats().retired_subtract, 0);
        assert_eq!(ring.reports(), 12);
        // SHE sums are floats, so the total matches a fresh merge of the
        // live windows only up to reassociation — the whole reason this
        // state refuses subtraction and takes the rebuild path.
        let mut rebuilt = CollectorService::from_descriptor(&desc).unwrap();
        for i in 0..ring.live_windows() {
            let (_, w) = &ring.live[i];
            rebuilt
                .merge(CollectorService::from_checkpoint(&w.checkpoint()).unwrap())
                .unwrap();
        }
        assert_eq!(rebuilt.reports(), ring.reports());
        for (a, b) in ring.estimates().iter().zip(rebuilt.estimates()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn late_frames_drop_against_the_watermark() {
        let desc = olhc_descriptor(16);
        let client = WireClient::from_descriptor(&desc).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut ring = WindowRing::new(&desc, WindowConfig::new(10, 2)).unwrap();

        for t in [0u64, 10, 20] {
            let s = stream(&client, &mut rng, 16, 3);
            ring.ingest_concat(t, &s).unwrap();
        }
        // Bucket 0 retired; its time range is now late.
        let mut frame = Vec::new();
        client.randomize_item(1, &mut rng, &mut frame).unwrap();
        assert!(!ring.ingest(5, &frame).unwrap());
        assert_eq!(ring.stats().late_dropped, 1);
        // In-horizon out-of-order ingest still lands.
        assert!(ring.ingest(12, &frame).unwrap());
        assert_eq!(ring.reports(), 7);
    }

    #[test]
    fn horizon_jump_resets_wholesale() {
        let desc = olhc_descriptor(16);
        let client = WireClient::from_descriptor(&desc).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let mut ring = WindowRing::new(&desc, WindowConfig::new(10, 3)).unwrap();

        for t in [0u64, 10, 20] {
            let s = stream(&client, &mut rng, 16, 4);
            ring.ingest_concat(t, &s).unwrap();
        }
        let s = stream(&client, &mut rng, 16, 4);
        ring.ingest_concat(1_000_000, &s).unwrap();
        assert_eq!(ring.stats().retired_wholesale, 3);
        // The reset opens empty windows back to the watermark the
        // incremental path would have produced, so the horizon is full
        // and in-horizon-but-older traffic still lands.
        assert_eq!(ring.live_windows(), 3);
        assert_eq!(ring.oldest_bucket(), Some(100_000 - 2));
        assert_eq!(ring.reports(), 4);
        let mut frame = Vec::new();
        client.randomize_item(2, &mut rng, &mut frame).unwrap();
        assert!(ring.ingest((100_000 - 1) * 10, &frame).unwrap());
        assert_eq!(ring.reports(), 5);
        assert_eq!(ring.stats().late_dropped, 0);
    }

    #[test]
    fn concat_error_keeps_window_and_total_in_step() {
        let desc = olhc_descriptor(16);
        let client = WireClient::from_descriptor(&desc).unwrap();
        let mut rng = StdRng::seed_from_u64(41);
        let mut ring = WindowRing::new(&desc, WindowConfig::new(10, 3)).unwrap();

        // Two good frames followed by a corrupt tail: the window and
        // the total must both keep exactly the two-frame prefix, so the
        // total still equals the merge of the live windows.
        let mut s = stream(&client, &mut rng, 16, 2);
        s.extend_from_slice(&[0xff, 0xff, 0xff]);
        let err = ring.ingest_concat(5, &s).unwrap_err();
        assert_eq!(err.ingested, 2);
        assert_eq!(ring.stats().frames_ingested, 2);
        assert_eq!(ring.reports(), 2);
        let (_, window) = &ring.live[0];
        assert_eq!(window.reports(), 2);
        assert_eq!(ring.total.checkpoint(), window.checkpoint());

        // The ring stays fully usable: a later clean stream round-trips
        // through checkpoint validation (which enforces the
        // total-covers-live-windows invariant).
        let s = stream(&client, &mut rng, 16, 3);
        assert_eq!(ring.ingest_concat(15, &s).unwrap(), 3);
        assert_eq!(ring.reports(), 5);
        let revived = WindowRing::from_checkpoint(&ring.checkpoint()).unwrap();
        assert_eq!(revived.reports(), 5);
    }

    #[test]
    fn decayed_estimates_weight_recency() {
        let desc = olhc_descriptor(8);
        let client = WireClient::from_descriptor(&desc).unwrap();
        let mut rng = StdRng::seed_from_u64(31);
        let mut ring = WindowRing::new(&desc, WindowConfig::new(10, 4).with_decay(0.5)).unwrap();

        // Item 0 heavy in an old window, item 1 heavy in the newest.
        let mut s = Vec::new();
        for _ in 0..200 {
            client.randomize_item(0, &mut rng, &mut s).unwrap();
        }
        ring.ingest_concat(0, &s).unwrap();
        let mut s = Vec::new();
        for _ in 0..200 {
            client.randomize_item(1, &mut rng, &mut s).unwrap();
        }
        ring.ingest_concat(30, &s).unwrap();

        let flat = ring.estimates();
        let decayed = ring.decayed_estimates().unwrap();
        // Undecayed: both items near 200. Decayed: item 0's window is 3
        // buckets old, so its weight is 1/8 of item 1's.
        assert!((flat[0] - flat[1]).abs() < 80.0, "{flat:?}");
        assert!(decayed[1] > 4.0 * decayed[0].max(1.0), "{decayed:?}");

        // Rings without decay refuse.
        let plain = WindowRing::new(&desc, WindowConfig::new(10, 4)).unwrap();
        assert!(matches!(
            plain.decayed_estimates(),
            Err(LdpError::InvalidParameter(_))
        ));
    }

    #[test]
    fn ring_checkpoint_round_trips_bit_exactly() {
        let desc = olhc_descriptor(16);
        let client = WireClient::from_descriptor(&desc).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let mut ring = WindowRing::new(&desc, WindowConfig::new(10, 3).with_decay(0.9)).unwrap();
        for t in [3u64, 14, 25, 36] {
            let s = stream(&client, &mut rng, 16, 8);
            ring.ingest_concat(t, &s).unwrap();
        }

        let blob = ring.checkpoint();
        let revived = WindowRing::from_checkpoint(&blob).unwrap();
        assert_eq!(revived.checkpoint(), blob);
        assert_eq!(revived.stats(), ring.stats());
        assert_eq!(revived.estimates(), ring.estimates());

        // The revived ring keeps advancing identically.
        let s = stream(&client, &mut rng, 16, 8);
        let mut a = ring;
        let mut b = revived;
        a.ingest_concat(47, &s).unwrap();
        b.ingest_concat(47, &s).unwrap();
        assert_eq!(a.checkpoint(), b.checkpoint());
    }

    #[test]
    fn ring_checkpoint_rejects_tampering() {
        let desc = olhc_descriptor(16);
        let client = WireClient::from_descriptor(&desc).unwrap();
        let mut rng = StdRng::seed_from_u64(19);
        let mut ring = WindowRing::new(&desc, WindowConfig::new(10, 2)).unwrap();
        let s = stream(&client, &mut rng, 16, 4);
        ring.ingest_concat(0, &s).unwrap();
        let blob = ring.checkpoint();

        // Truncation, bad version, bad tag: all typed errors.
        assert!(WindowRing::from_checkpoint(&blob[..blob.len() - 1]).is_err());
        let mut bad = blob.clone();
        bad[0] ^= 0xff;
        assert!(WindowRing::from_checkpoint(&bad).is_err());
        let mut bad = blob.clone();
        bad[1] = state_tag::SERVICE_CHECKPOINT;
        assert!(WindowRing::from_checkpoint(&bad).is_err());

        // Restore requires matching config.
        let mut other = WindowRing::new(&desc, WindowConfig::new(10, 5)).unwrap();
        assert!(matches!(
            other.restore(&blob),
            Err(LdpError::StateMismatch(_))
        ));
    }

    #[test]
    fn accountant_meters_and_releases_over_the_horizon() {
        // Allowance of 1.0 at 0.4/window over a 3-window horizon: a
        // device can afford 2 consecutive windows, then must skip.
        let mut acct =
            LongitudinalAccountant::new(Epsilon::new(1.0).unwrap(), Epsilon::new(0.4).unwrap(), 3)
                .unwrap();
        acct.try_charge(7, 0).unwrap();
        acct.try_charge(7, 0).unwrap(); // idempotent per window
        acct.try_charge(7, 1).unwrap();
        assert!((acct.spent(7) - 0.8).abs() < 1e-12);
        assert!(matches!(
            acct.try_charge(7, 2),
            Err(LdpError::BudgetExhausted { .. })
        ));
        // Window 0 scrolls out at bucket 3: its 0.4 is released.
        acct.try_charge(7, 3).unwrap();
        assert!((acct.spent(7) - 0.8).abs() < 1e-12);
        // Other devices have their own ledgers.
        acct.try_charge(8, 3).unwrap();
        assert!((acct.spent(8) - 0.4).abs() < 1e-12);
        assert_eq!(acct.devices(), 2);

        // A per-window charge above the allowance is rejected up front.
        assert!(LongitudinalAccountant::new(
            Epsilon::new(0.3).unwrap(),
            Epsilon::new(0.4).unwrap(),
            3,
        )
        .is_err());
    }

    #[test]
    fn accountant_accepts_out_of_order_in_horizon_charges() {
        // The ring's watermark admits any in-horizon bucket, not just
        // monotone ones, so charging per accepted frame must too.
        let mut acct =
            LongitudinalAccountant::new(Epsilon::new(2.0).unwrap(), Epsilon::new(0.5).unwrap(), 4)
                .unwrap();
        acct.try_charge(1, 10).unwrap();
        acct.try_charge(1, 8).unwrap(); // older, in horizon [7, 10]
        assert!((acct.spent(1) - 1.0).abs() < 1e-12);
        // Idempotent even for a bucket that is not the newest.
        acct.try_charge(1, 8).unwrap();
        assert!((acct.spent(1) - 1.0).abs() < 1e-12);
        // A bucket that predates the whole horizon is a budget no-op:
        // its charge would be released in the same call.
        acct.try_charge(1, 3).unwrap();
        assert!((acct.spent(1) - 1.0).abs() < 1e-12);
        // Releases stay anchored at the newest charge: at bucket 13 the
        // horizon is [10, 13], so 8's charge is handed back.
        acct.try_charge(1, 13).unwrap();
        assert!((acct.spent(1) - 1.0).abs() < 1e-12);
        assert_eq!(acct.devices(), 1);
    }

    #[test]
    fn accountant_failed_charge_leaves_no_trace() {
        let mut acct =
            LongitudinalAccountant::new(Epsilon::new(1.0).unwrap(), Epsilon::new(0.5).unwrap(), 8)
                .unwrap();
        acct.try_charge(4, 0).unwrap();
        acct.try_charge(4, 1).unwrap();
        assert!(matches!(
            acct.try_charge(4, 2),
            Err(LdpError::BudgetExhausted { .. })
        ));
        // The failed draw recorded nothing: spend is unchanged and a
        // retry for an already-charged bucket is still idempotent.
        assert!((acct.spent(4) - 1.0).abs() < 1e-12);
        acct.try_charge(4, 1).unwrap();
        assert!((acct.spent(4) - 1.0).abs() < 1e-12);
        // Only devices that actually paid appear in the roster.
        assert_eq!(acct.devices(), 1);
    }
}
