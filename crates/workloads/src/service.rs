//! The collector service: the single entry point a deployment exposes.
//!
//! A [`CollectorService`] owns a [`ProtocolDescriptor`] and the matching
//! type-erased aggregator, and ingests **serialized** report frames —
//! `&[u8]` in, estimates out, for any mechanism the backing
//! [`Registry`] can instantiate. This is the client/server seam the
//! deployed systems in the tutorial all share: a versioned protocol
//! config shipped to the fleet, opaque randomized bytes flowing back,
//! and a mergeable server state that shards across collectors.
//!
//! Guarantees:
//!
//! * **Panic-free ingestion** — malformed, truncated, wrong-version, or
//!   wrong-mechanism frames come back as [`LdpError`]s; the aggregate
//!   state is untouched by a rejected frame.
//! * **Bit-identity with the in-process engine** — a population
//!   randomized shard-by-shard with [`WireClient::frames_sharded`],
//!   ingested into per-shard services, and [`CollectorService::merge`]d
//!   in shard order produces estimates bit-identical to
//!   [`crate::parallel::accumulate_mech_sharded`] over the same inputs,
//!   seed, and shard count (the scalar/batch RNG-stream contract plus
//!   exact round-tripping of every report type). The workspace-root
//!   `tests/service_dispatch.rs` enforces this for every registered
//!   kind.
//! * **Mergeable across shards** — services built from equal
//!   descriptors merge; mismatched descriptors are rejected, not
//!   UB'd into a panic deep inside an aggregator.
//!
//! ```
//! use ldp_core::protocol::{MechanismKind, ProtocolDescriptor};
//! use ldp_workloads::service::{CollectorService, WireClient};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // The operator ships one versioned config...
//! let desc = ProtocolDescriptor::builder(MechanismKind::CohortLocalHashing)
//!     .domain_size(64)
//!     .epsilon(2.0)
//!     .cohorts(256)
//!     .build()
//!     .unwrap();
//!
//! // ...clients randomize locally and transmit opaque bytes...
//! let client = WireClient::from_descriptor(&desc).unwrap();
//! let mut rng = StdRng::seed_from_u64(7);
//! let mut wire = Vec::new();
//! for user in 0..2000u64 {
//!     client.randomize_item(user % 64, &mut rng, &mut wire).unwrap();
//! }
//!
//! // ...and the collector folds frames without ever seeing a value.
//! let mut service = CollectorService::from_descriptor(&desc).unwrap();
//! let ingested = service.ingest_concat(&wire).unwrap();
//! assert_eq!(ingested, 2000);
//! assert_eq!(service.reports(), 2000);
//! let estimates = service.estimates();
//! assert_eq!(estimates.len(), 64);
//! ```

use ldp_core::protocol::{ProtocolDescriptor, Registry};
use ldp_core::snapshot::{state_tag, SNAPSHOT_VERSION};
use ldp_core::wire::{
    put_u64_le, put_uvarint, uvarint_array, ErasedAggregator, ErasedMechanism, WireReader,
};
use ldp_core::{LdpError, Result};
use rand::RngCore;

use crate::parallel::shard_seed;

/// A frame stream stopped at a bad frame: the error that stopped it,
/// plus how many frames before it were **successfully folded in** (the
/// aggregate keeps them), so callers can account for partial batches.
#[derive(Debug)]
pub struct IngestError {
    /// Frames ingested before the failure; the aggregate state includes
    /// exactly these.
    pub ingested: usize,
    /// The error raised by the first bad frame.
    pub source: LdpError,
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ingest stopped after {} frames: {}",
            self.ingested, self.source
        )
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

impl From<IngestError> for LdpError {
    fn from(e: IngestError) -> Self {
        e.source
    }
}

/// A registry with **every** workspace mechanism registered: the ten
/// `ldp-core` oracles plus Apple CMS/HCMS and Microsoft
/// dBitFlip/1BitMean (delegates to [`ldp_planner::workspace_registry`],
/// so the planner validates against exactly this registry).
#[must_use]
pub fn workspace_registry() -> Registry {
    ldp_planner::workspace_registry()
}

// The planner's vocabulary, re-exported where deployments assemble
// their serving stack: `workspace_planner().plan(&spec)` yields
// descriptors that instantiate through this module's `WireClient` /
// `CollectorService` unchanged.
pub use ldp_planner::{
    workspace_cost_book, workspace_planner, Plan, Planner, QueryShape, WorkloadSpec,
};

/// The client half of the wire protocol: randomizes private inputs into
/// report frames for the mechanism a descriptor describes.
///
/// In a deployment this object is the piece that ships to devices (its
/// construction is exactly as reproducible as the descriptor); here it
/// also powers tests and benches that need byte-path traffic.
#[derive(Debug)]
pub struct WireClient {
    mech: Box<dyn ErasedMechanism>,
}

impl WireClient {
    /// Builds the client for `descriptor` from the full workspace
    /// registry.
    ///
    /// # Errors
    /// Whatever [`Registry::build`] surfaces.
    pub fn from_descriptor(descriptor: &ProtocolDescriptor) -> Result<Self> {
        Self::with_registry(&workspace_registry(), descriptor)
    }

    /// Builds the client for `descriptor` from a caller-provided
    /// registry.
    ///
    /// # Errors
    /// Whatever [`Registry::build`] surfaces.
    pub fn with_registry(registry: &Registry, descriptor: &ProtocolDescriptor) -> Result<Self> {
        Ok(Self {
            mech: registry.build(descriptor)?,
        })
    }

    /// The descriptor this client randomizes for.
    pub fn descriptor(&self) -> &ProtocolDescriptor {
        self.mech.descriptor()
    }

    /// Randomizes one item input (`value ∈ [0, d)`) and appends its wire
    /// frame to `out`.
    ///
    /// # Errors
    /// [`LdpError`] for out-of-domain values or a mechanism that does
    /// not take item inputs (1BitMean takes reals).
    pub fn randomize_item(
        &self,
        value: u64,
        rng: &mut dyn RngCore,
        out: &mut Vec<u8>,
    ) -> Result<()> {
        // Items cross the input codec as varints; encode on the stack
        // (`WireInput for u64` is the same LEB128 bytes).
        let (buf, n) = uvarint_array(value);
        self.mech.randomize_from_bytes(&buf[..n], rng, out)
    }

    /// Randomizes one real-valued input (1BitMean) and appends its wire
    /// frame to `out`.
    ///
    /// # Errors
    /// [`LdpError`] for out-of-range values or a mechanism that takes
    /// item inputs.
    pub fn randomize_real(
        &self,
        value: f64,
        rng: &mut dyn RngCore,
        out: &mut Vec<u8>,
    ) -> Result<()> {
        // Reals cross the input codec as 8 little-endian IEEE-754 bytes
        // (`WireInput for f64`) — a stack array, not a per-call `Vec`.
        self.mech
            .randomize_from_bytes(&value.to_le_bytes(), rng, out)
    }

    /// Randomizes an item population into per-shard frame buffers,
    /// mirroring the sharded engine's plan exactly: shard `i` covers the
    /// same contiguous input range and consumes the RNG stream
    /// `StdRng::seed_from_u64(shard_seed(base_seed, i))` that
    /// [`crate::parallel::accumulate_mech_sharded`] would give it.
    /// Ingesting buffer `i` into the `i`-th of per-shard services and
    /// merging in shard order therefore reproduces the in-process
    /// engine's aggregate bit for bit.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] if `shards == 0`, plus anything
    /// [`Self::randomize_item`] can raise.
    pub fn frames_sharded(
        &self,
        values: &[u64],
        base_seed: u64,
        shards: usize,
    ) -> Result<Vec<Vec<u8>>> {
        if shards == 0 {
            return Err(LdpError::InvalidParameter("need at least one shard".into()));
        }
        let shards = shards.min(values.len().max(1));
        let bounds = crate::parallel::shard_bounds(values.len(), shards);
        let mut buffers = Vec::with_capacity(shards);
        // Frames of one mechanism are near-constant-width, so the first
        // shard's measured bytes/frame sizes the remaining buffers up
        // front instead of growing them through doubling copies.
        let mut frame_hint = 0usize;
        for (i, (lo, hi)) in bounds.into_iter().enumerate() {
            let mut buf = Vec::with_capacity(frame_hint * (hi - lo));
            self.mech.randomize_items_to_frames(
                &values[lo..hi],
                shard_seed(base_seed, i),
                &mut buf,
            )?;
            if i == 0 && hi > lo {
                frame_hint = buf.len().div_ceil(hi - lo);
            }
            buffers.push(buf);
        }
        Ok(buffers)
    }

    /// [`Self::frames_sharded`] into caller-owned buffers: clears and
    /// refills `buffers` (resizing it to the effective shard count) with
    /// byte-identical contents. A client that frames round after round
    /// keeps its per-shard `Vec`s across rounds, so the steady-state
    /// cost is the sampling and the payload writes — not a fresh
    /// multi-megabyte allocation per round, which the system allocator
    /// serves by `mmap` and hands back page-faulting and kernel-zeroed.
    ///
    /// # Errors
    /// As [`Self::frames_sharded`]. On error, `buffers` holds the
    /// shards completed so far (later entries are cleared).
    pub fn frames_sharded_into(
        &self,
        values: &[u64],
        base_seed: u64,
        shards: usize,
        buffers: &mut Vec<Vec<u8>>,
    ) -> Result<()> {
        if shards == 0 {
            return Err(LdpError::InvalidParameter("need at least one shard".into()));
        }
        let shards = shards.min(values.len().max(1));
        let bounds = crate::parallel::shard_bounds(values.len(), shards);
        buffers.resize_with(shards, Vec::new);
        buffers.truncate(shards);
        for buf in buffers.iter_mut() {
            buf.clear();
        }
        for (i, (lo, hi)) in bounds.into_iter().enumerate() {
            self.mech.randomize_items_to_frames(
                &values[lo..hi],
                shard_seed(base_seed, i),
                &mut buffers[i],
            )?;
        }
        Ok(())
    }

    /// Randomizes **one shard's** slice of an item population into
    /// `out`, with the same seed derivation
    /// (`shard_seed(base_seed, shard)`) as
    /// [`Self::frames_sharded`] — the streaming building block: a
    /// driver can generate, submit, and discard one shard's frames at a
    /// time ([`crate::pipeline::stream_population`]) without ever
    /// holding the whole population's frames in memory, and the
    /// concatenation over shards is byte-identical to the all-at-once
    /// call.
    ///
    /// # Errors
    /// As [`Self::frames_sharded`].
    pub fn frames_for_shard(
        &self,
        shard_values: &[u64],
        base_seed: u64,
        shard: usize,
        out: &mut Vec<u8>,
    ) -> Result<()> {
        self.mech
            .randomize_items_to_frames(shard_values, shard_seed(base_seed, shard), out)
    }
}

/// The server half: owns a descriptor plus the matching erased
/// aggregator, ingests serialized report frames, merges across shards,
/// and snapshots estimates. See the module docs for the guarantees.
#[derive(Debug)]
pub struct CollectorService {
    mech: Box<dyn ErasedMechanism>,
    agg: Box<dyn ErasedAggregator>,
}

impl CollectorService {
    /// Builds the service for `descriptor` from the full workspace
    /// registry.
    ///
    /// # Errors
    /// Whatever [`Registry::build`] surfaces (unknown kind, raw-OLH
    /// steering, invalid parameters).
    pub fn from_descriptor(descriptor: &ProtocolDescriptor) -> Result<Self> {
        Self::with_registry(&workspace_registry(), descriptor)
    }

    /// Builds the service for `descriptor` from a caller-provided
    /// registry.
    ///
    /// # Errors
    /// Whatever [`Registry::build`] surfaces.
    pub fn with_registry(registry: &Registry, descriptor: &ProtocolDescriptor) -> Result<Self> {
        let mech = registry.build(descriptor)?;
        let agg = mech.new_erased_aggregator();
        Ok(Self { mech, agg })
    }

    /// The descriptor this service aggregates for.
    pub fn descriptor(&self) -> &ProtocolDescriptor {
        self.mech.descriptor()
    }

    /// Ingests exactly one report frame.
    ///
    /// # Errors
    /// Any [`LdpError`] for bytes that are not one well-formed,
    /// current-version frame of this mechanism's report type; the
    /// aggregate state is unchanged on error.
    pub fn ingest(&mut self, frame: &[u8]) -> Result<()> {
        self.mech.accumulate_from_bytes(self.agg.as_mut(), frame)
    }

    /// Ingests a buffer of back-to-back frames (the batched transport
    /// shape: one network payload carrying many reports), returning how
    /// many frames were folded in. Rides the mechanism's
    /// [`ErasedMechanism::accumulate_concat`] fast path: one aggregator
    /// downcast per stream and one reused scratch report, instead of
    /// per-frame dispatch.
    ///
    /// # Errors
    /// Stops at the first bad frame; the [`IngestError`] carries both
    /// the cause and the count of frames before it, which **remain
    /// ingested** (exactly the reports the error-position prefix
    /// carried).
    pub fn ingest_concat(&mut self, stream: &[u8]) -> std::result::Result<usize, IngestError> {
        let (ingested, res) = self.mech.accumulate_concat(self.agg.as_mut(), stream);
        match res {
            Ok(()) => Ok(ingested),
            Err(source) => Err(IngestError { ingested, source }),
        }
    }

    /// Merges another service's aggregate into this one, as if every
    /// frame it ingested had been ingested here.
    ///
    /// # Errors
    /// [`LdpError::Malformed`] if the two services were built from
    /// different descriptors (mechanism, parameters, or version) — the
    /// descriptor is the compatibility contract.
    pub fn merge(&mut self, other: CollectorService) -> Result<()> {
        if self.descriptor() != other.descriptor() {
            return Err(LdpError::Malformed(format!(
                "merge: descriptor mismatch ({} vs {})",
                self.descriptor().kind().name(),
                other.descriptor().kind().name()
            )));
        }
        self.agg.merge_erased(other.agg)
    }

    /// Retires another service's aggregate from this one — the exact
    /// inverse of [`merge`](Self::merge): if every frame `other`
    /// ingested was also merged here, the state afterwards is
    /// bit-identical to never having merged it. `other` is borrowed, not
    /// consumed, so a refused subtract leaves both services usable (the
    /// window ring falls back to rebuilding its total from live deltas).
    ///
    /// # Errors
    /// [`LdpError::Malformed`] on descriptor mismatch;
    /// [`LdpError::NotSubtractive`] when the mechanism's state has no
    /// exact merge inverse (SHE); [`LdpError::StateMismatch`] when
    /// `other` is not a sub-aggregate of this state. The aggregate is
    /// unchanged on every error.
    pub fn subtract(&mut self, other: &CollectorService) -> Result<()> {
        if self.descriptor() != other.descriptor() {
            return Err(LdpError::Malformed(format!(
                "subtract: descriptor mismatch ({} vs {})",
                self.descriptor().kind().name(),
                other.descriptor().kind().name()
            )));
        }
        self.agg.subtract_erased(other.agg.as_ref())
    }

    /// Number of reports ingested so far.
    pub fn reports(&self) -> usize {
        self.agg.reports()
    }

    /// Snapshot of the unbiased estimates over the mechanism's output
    /// domain (counts per item for frequency oracles, `[mean]` for
    /// 1BitMean).
    #[must_use]
    pub fn estimates(&self) -> Vec<f64> {
        self.agg.estimate()
    }

    /// Snapshot of estimates for a candidate subset.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] for items outside the descriptor's
    /// domain.
    pub fn estimate_items(&self, items: &[u64]) -> Result<Vec<f64>> {
        let d = self.descriptor().domain_size();
        if let Some(&bad) = items.iter().find(|&&v| v >= d) {
            return Err(LdpError::InvalidParameter(format!(
                "item {bad} outside domain of size {d}"
            )));
        }
        Ok(self.agg.estimate_items(items))
    }

    /// Serializes the full service state into one self-describing
    /// checkpoint BLOB:
    ///
    /// ```text
    /// [SNAPSHOT_VERSION] [SERVICE_CHECKPOINT] [uvarint len] [payload]
    /// payload = [uvarint desc_len] [descriptor bytes]
    ///           [u64-LE descriptor stable_hash] [aggregator state BLOB]
    /// ```
    ///
    /// The BLOB carries its own descriptor, so a crashed collector can be
    /// resumed by [`from_checkpoint`](Self::from_checkpoint) with no
    /// out-of-band configuration, and the embedded
    /// [`ProtocolDescriptor::stable_hash`] guards against a descriptor /
    /// state pairing forged or corrupted in storage.
    #[must_use]
    pub fn checkpoint(&self) -> Vec<u8> {
        let desc = self.descriptor().to_bytes();
        let mut payload = Vec::with_capacity(desc.len() + 64);
        put_uvarint(&mut payload, desc.len() as u64);
        payload.extend_from_slice(&desc);
        put_u64_le(&mut payload, self.descriptor().stable_hash());
        self.agg.snapshot(&mut payload);
        let mut out = Vec::with_capacity(payload.len() + 12);
        out.push(SNAPSHOT_VERSION);
        out.push(state_tag::SERVICE_CHECKPOINT);
        put_uvarint(&mut out, payload.len() as u64);
        out.extend_from_slice(&payload);
        out
    }

    /// Replaces this service's aggregate with the state in `bytes`
    /// (written by [`checkpoint`](Self::checkpoint) on a service built
    /// from the **same** descriptor).
    ///
    /// # Errors
    /// Any [`LdpError`] for damaged bytes, and
    /// [`LdpError::StateMismatch`] when the checkpoint's descriptor is
    /// not this service's descriptor; the aggregate is unchanged on
    /// error.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<()> {
        let (desc, blob) = parse_checkpoint(bytes)?;
        if &desc != self.descriptor() {
            return Err(LdpError::StateMismatch(format!(
                "checkpoint was taken under a different {} descriptor",
                desc.kind().name()
            )));
        }
        self.agg.restore(blob)
    }

    /// Reconstructs a service — descriptor and aggregate — from a
    /// checkpoint BLOB, using the full workspace registry.
    ///
    /// # Errors
    /// Any [`LdpError`] for damaged bytes, plus whatever
    /// [`Registry::build`] surfaces for the embedded descriptor.
    pub fn from_checkpoint(bytes: &[u8]) -> Result<Self> {
        Self::from_checkpoint_with_registry(&workspace_registry(), bytes)
    }

    /// [`from_checkpoint`](Self::from_checkpoint) against a
    /// caller-provided registry.
    ///
    /// # Errors
    /// As [`from_checkpoint`](Self::from_checkpoint).
    pub fn from_checkpoint_with_registry(registry: &Registry, bytes: &[u8]) -> Result<Self> {
        let (desc, blob) = parse_checkpoint(bytes)?;
        let mut service = Self::with_registry(registry, &desc)?;
        service.agg.restore(blob)?;
        Ok(service)
    }
}

/// Splits one checkpoint BLOB into its re-validated descriptor and the
/// embedded aggregator state BLOB.
fn parse_checkpoint(bytes: &[u8]) -> Result<(ProtocolDescriptor, &[u8])> {
    let mut r = WireReader::new(bytes);
    let version = r.u8()?;
    if version != SNAPSHOT_VERSION {
        return Err(LdpError::VersionMismatch {
            got: version,
            expected: SNAPSHOT_VERSION,
        });
    }
    let tag = r.u8()?;
    if tag != state_tag::SERVICE_CHECKPOINT {
        return Err(LdpError::ReportTypeMismatch {
            got: tag,
            expected: state_tag::SERVICE_CHECKPOINT,
        });
    }
    let len = r.uvarint()?;
    let len = usize::try_from(len)
        .map_err(|_| LdpError::Malformed(format!("checkpoint length {len} overflows")))?;
    let payload = r.bytes(len)?;
    r.finish()?;
    let mut pr = WireReader::new(payload);
    let desc_len = pr.uvarint()?;
    let desc_len = usize::try_from(desc_len)
        .map_err(|_| LdpError::Malformed(format!("descriptor length {desc_len} overflows")))?;
    let desc = ProtocolDescriptor::from_bytes(pr.bytes(desc_len)?)?;
    let hash = pr.u64_le()?;
    if hash != desc.stable_hash() {
        return Err(LdpError::Malformed(
            "checkpoint descriptor hash does not match its descriptor".into(),
        ));
    }
    let blob = pr.bytes(pr.remaining())?;
    Ok((desc, blob))
}

/// A bounded-fan-in merge tree over [`CollectorService`] checkpoints:
/// the cross-process rollup driver (collector → regional → global) the
/// snapshot layer exists for.
///
/// Every level loads at most `fan_in` checkpoints at a time, merges them
/// (exact integer addition for every mechanism except SHE's real sums),
/// and re-serializes the group's combined state — so a rollup over any
/// number of collector shards runs in `O(fan_in)` live aggregators of
/// memory, and any grouping of the same shards produces bit-identical
/// global estimates (merge associativity, proptested in
/// `tests/service_dispatch.rs`).
pub struct MergeTree {
    registry: Registry,
    fan_in: usize,
}

impl std::fmt::Debug for MergeTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MergeTree")
            .field("fan_in", &self.fan_in)
            .finish_non_exhaustive()
    }
}

impl MergeTree {
    /// A merge tree over the full workspace registry.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] if `fan_in < 2` (a 1-ary "merge"
    /// would never shrink a level).
    pub fn new(fan_in: usize) -> Result<Self> {
        Self::with_registry(workspace_registry(), fan_in)
    }

    /// A merge tree resolving descriptors against `registry`.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] if `fan_in < 2`.
    pub fn with_registry(registry: Registry, fan_in: usize) -> Result<Self> {
        if fan_in < 2 {
            return Err(LdpError::InvalidParameter(format!(
                "merge tree fan-in must be at least 2, got {fan_in}"
            )));
        }
        Ok(Self { registry, fan_in })
    }

    /// Merges one level: each group of up to `fan_in` consecutive
    /// checkpoints becomes one combined checkpoint.
    ///
    /// # Errors
    /// Any [`LdpError`] a checkpoint load or a descriptor-mismatched
    /// merge can raise.
    pub fn merge_level(&self, checkpoints: &[Vec<u8>]) -> Result<Vec<Vec<u8>>> {
        checkpoints
            .chunks(self.fan_in)
            .map(|group| {
                let mut acc =
                    CollectorService::from_checkpoint_with_registry(&self.registry, &group[0])?;
                for blob in &group[1..] {
                    acc.merge(CollectorService::from_checkpoint_with_registry(
                        &self.registry,
                        blob,
                    )?)?;
                }
                Ok(acc.checkpoint())
            })
            .collect()
    }

    /// Runs [`merge_level`](Self::merge_level) until one checkpoint
    /// remains and loads it as the global service.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] for an empty input, plus anything
    /// [`merge_level`](Self::merge_level) can raise.
    pub fn merge_to_root(&self, checkpoints: &[Vec<u8>]) -> Result<CollectorService> {
        if checkpoints.is_empty() {
            return Err(LdpError::InvalidParameter(
                "merge tree needs at least one checkpoint".into(),
            ));
        }
        let mut level = self.merge_level(checkpoints)?;
        while level.len() > 1 {
            level = self.merge_level(&level)?;
        }
        CollectorService::from_checkpoint_with_registry(&self.registry, &level[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_core::protocol::MechanismKind;
    use ldp_core::wire::WIRE_VERSION;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn olhc_descriptor(d: u64) -> ProtocolDescriptor {
        ProtocolDescriptor::builder(MechanismKind::CohortLocalHashing)
            .domain_size(d)
            .epsilon(1.0)
            .cohorts(64)
            .build()
            .expect("valid descriptor")
    }

    #[test]
    fn round_trip_through_bytes() {
        let desc = olhc_descriptor(32);
        let client = WireClient::from_descriptor(&desc).unwrap();
        let mut service = CollectorService::from_descriptor(&desc).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut wire = Vec::new();
        for v in 0..500u64 {
            client.randomize_item(v % 32, &mut rng, &mut wire).unwrap();
        }
        assert_eq!(service.ingest_concat(&wire).unwrap(), 500);
        assert_eq!(service.reports(), 500);
        assert_eq!(service.estimates().len(), 32);
    }

    #[test]
    fn malformed_frames_error_and_leave_state_intact() {
        let desc = olhc_descriptor(32);
        let client = WireClient::from_descriptor(&desc).unwrap();
        let mut service = CollectorService::from_descriptor(&desc).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut frame = Vec::new();
        client.randomize_item(5, &mut rng, &mut frame).unwrap();

        // Truncations of a valid frame.
        for cut in 0..frame.len() {
            assert!(service.ingest(&frame[..cut]).is_err(), "cut {cut}");
        }
        // Wrong version byte.
        let mut bad = frame.clone();
        bad[0] = WIRE_VERSION + 1;
        assert!(matches!(
            service.ingest(&bad),
            Err(LdpError::VersionMismatch { .. })
        ));
        // Wrong report type (a GRR frame fed to an OLH-C service).
        let grr = ProtocolDescriptor::builder(MechanismKind::DirectEncoding)
            .domain_size(32)
            .epsilon(1.0)
            .build()
            .unwrap();
        let grr_client = WireClient::from_descriptor(&grr).unwrap();
        let mut foreign = Vec::new();
        grr_client
            .randomize_item(5, &mut rng, &mut foreign)
            .unwrap();
        assert!(matches!(
            service.ingest(&foreign),
            Err(LdpError::ReportTypeMismatch { .. })
        ));
        // Nothing was ingested by any failed call.
        assert_eq!(service.reports(), 0);
        // The original frame still works.
        service.ingest(&frame).unwrap();
        assert_eq!(service.reports(), 1);
    }

    #[test]
    fn frames_sharded_into_matches_allocating_call() {
        let desc = olhc_descriptor(32);
        let client = WireClient::from_descriptor(&desc).unwrap();
        let values: Vec<u64> = (0..200u64).map(|v| v % 32).collect();
        let fresh = client.frames_sharded(&values, 7, 5).unwrap();
        // Reused buffers start dirty and at the wrong count: stale bytes
        // and extra shards must not leak into the refill.
        let mut reused = vec![vec![0xAAu8; 97]; 9];
        client
            .frames_sharded_into(&values, 7, 5, &mut reused)
            .unwrap();
        assert_eq!(reused, fresh);
    }

    #[test]
    fn ingest_concat_reports_partial_count() {
        let desc = olhc_descriptor(32);
        let client = WireClient::from_descriptor(&desc).unwrap();
        let mut service = CollectorService::from_descriptor(&desc).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut wire = Vec::new();
        for v in 0..10u64 {
            client.randomize_item(v, &mut rng, &mut wire).unwrap();
        }
        // Chop the last byte: nine frames fold in, the tenth fails, and
        // the error accounts for the partial batch.
        let err = service.ingest_concat(&wire[..wire.len() - 1]).unwrap_err();
        assert_eq!(err.ingested, 9);
        assert_eq!(service.reports(), 9);
        assert!(matches!(err.source, LdpError::Truncated { .. }));
        // `?`-conversion into the workspace error keeps the cause.
        let as_ldp: LdpError = err.into();
        assert!(matches!(as_ldp, LdpError::Truncated { .. }));
    }

    #[test]
    fn merge_requires_equal_descriptors() {
        let a = olhc_descriptor(32);
        let b = olhc_descriptor(64);
        let mut sa = CollectorService::from_descriptor(&a).unwrap();
        let sb = CollectorService::from_descriptor(&b).unwrap();
        assert!(sa.merge(sb).is_err());
        let sa2 = CollectorService::from_descriptor(&a).unwrap();
        assert!(sa.merge(sa2).is_ok());
    }

    #[test]
    fn real_input_mechanism_round_trips() {
        let desc = ProtocolDescriptor::builder(MechanismKind::MicrosoftOneBitMean)
            .epsilon(1.0)
            .max_value(100.0)
            .build()
            .unwrap();
        let client = WireClient::from_descriptor(&desc).unwrap();
        let mut service = CollectorService::from_descriptor(&desc).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut wire = Vec::new();
        for i in 0..4000 {
            client
                .randomize_real(50.0 + (i % 10) as f64, &mut rng, &mut wire)
                .unwrap();
        }
        service.ingest_concat(&wire).unwrap();
        let est = service.estimates();
        assert_eq!(est.len(), 1);
        assert!((est[0] - 54.5).abs() < 15.0, "mean estimate {}", est[0]);
        // Out-of-range input is an error, not a panic.
        let mut out = Vec::new();
        assert!(client.randomize_real(101.0, &mut rng, &mut out).is_err());
        // Item inputs don't decode as reals.
        assert!(client.randomize_item(5, &mut rng, &mut out).is_err());
    }

    #[test]
    fn estimate_items_validates_domain() {
        let desc = olhc_descriptor(16);
        let service = CollectorService::from_descriptor(&desc).unwrap();
        assert!(service.estimate_items(&[0, 15]).is_ok());
        assert!(service.estimate_items(&[16]).is_err());
    }
}
