//! Sharded parallel collection: randomize-and-accumulate across
//! `std::thread::scope` workers, combined with [`FoAggregator::merge`].
//!
//! The deployment picture the tutorial paints — millions of clients
//! reporting to a fleet of collectors — reduces server-side to one
//! algebraic requirement: the aggregate state must be *mergeable*. Every
//! aggregator in `ldp-core` satisfies it, so collection can be split into
//! shards, accumulated independently (here: on worker threads; in a real
//! deployment: on separate collector machines), and merged.
//!
//! Determinism is a first-class property of this harness. Work is divided
//! into a fixed number of **logical shards**, each with its own
//! seed-derived RNG stream, and shard aggregators are merged in shard
//! order. The worker count only decides which thread runs which shard, so
//! the result is bit-identical across machines, core counts, and
//! schedules — and bit-identical to [`accumulate_sharded_sequential`],
//! the single-threaded reference that tests compare against.
//!
//! Each shard runs the mechanism's **fused batch path**: reports fold
//! straight into the shard aggregator with monomorphized RNG draws and,
//! for the unary family, geometric-skip bit sampling — no per-report
//! allocation. Because the fused path replays the scalar RNG stream
//! exactly, the determinism contract is unchanged. Workers are spawned
//! once per collection round and live for all of their shards (strided
//! assignment), so thread-spawn cost is paid `workers` times per round,
//! not `shards` times; [`recommended_shards`] sizes shards so that spawn
//! cost stays amortized. [`accumulate_sharded_with_workers`] pins the
//! worker count explicitly — benches use it for honest 1-vs-N scaling
//! comparisons, and [`planned_workers`] reports the count the automatic
//! path would use (what the bench JSON records as `threads`).
//!
//! The engine is generic over [`BatchMechanism`], not just
//! [`FrequencyOracle`]: the `accumulate_mech_sharded*` entry points drive
//! *any* batch-fusable mechanism — `ldp_microsoft::OneBitMean` over
//! `&[f64]`, a telemetry round over `(device, value)` pairs, and every
//! frequency oracle through the blanket `&O` adapter (the
//! `accumulate_sharded*` functions below are thin item-domain wrappers
//! over the same core). One engine, every mechanism in the workspace —
//! Apple's CMS/HCMS and Microsoft's dBitFlip ride the oracle wrappers,
//! 1BitMean and the assembled pipeline ride [`BatchMechanism`] directly.

use ldp_core::fo::{FoAggregator, FrequencyOracle};
use ldp_core::mech::BatchMechanism;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::thread;

/// Derives the deterministic RNG seed for one logical shard (a SplitMix64
/// finalizer over the base seed and shard index, so shard streams are
/// decorrelated even for adjacent base seeds).
#[inline]
pub fn shard_seed(base_seed: u64, shard: usize) -> u64 {
    let mut z = base_seed ^ (shard as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Contiguous `[lo, hi)` bounds of each logical shard — the single
/// source of the shard plan, shared by the in-process engine here and
/// the byte path's `service::WireClient::frames_sharded` (their
/// bit-identity depends on both using exactly this plan).
pub(crate) fn shard_bounds(len: usize, shards: usize) -> Vec<(usize, usize)> {
    let chunk = len.div_ceil(shards);
    (0..shards)
        .map(|i| ((i * chunk).min(len), ((i + 1) * chunk).min(len)))
        .collect()
}

/// Randomizes and accumulates one shard's inputs with its own RNG stream,
/// through the mechanism's fused batch path (allocation-free where the
/// mechanism supports it, monomorphized draws for everyone).
fn accumulate_shard<M: BatchMechanism>(mech: &M, inputs: &[M::Input], seed: u64) -> M::Aggregator {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut agg = mech.new_aggregator();
    mech.accumulate_batch(inputs, &mut rng, &mut agg);
    agg
}

/// The worker count [`accumulate_sharded`] uses for a given shard count:
/// one per available core, capped at the shard count. Benches record this
/// as the `threads` field so the JSON reflects the parallelism actually
/// exercised, not a constant.
pub fn planned_workers(shards: usize) -> usize {
    thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(shards.max(1))
}

/// A shard count that keeps every worker busy while amortizing the
/// per-worker spawn cost: a few shards per worker for load balance, but
/// never so many that shards shrink below ~4k users (at which point spawn
/// and merge overhead is no longer noise).
///
/// **Reproducibility note:** the shard count is part of the determinism
/// contract — two machines with different core counts get different plans
/// from this helper. Pipelines that must reproduce results bit-for-bit
/// across machines should pass a fixed shard count instead.
pub fn recommended_shards(len: usize, workers: usize) -> usize {
    const MIN_PER_SHARD: usize = 4096;
    let cap = workers.max(1) * 4;
    (len / MIN_PER_SHARD).clamp(1, cap.max(1))
}

/// Merges per-shard aggregators in shard order; order is part of the
/// determinism contract (floating-point states reassociate otherwise).
fn merge_in_order<A: FoAggregator>(mut parts: Vec<Option<A>>) -> A {
    let mut acc = parts[0].take().expect("shard 0 aggregator present");
    for p in parts.iter_mut().skip(1) {
        acc.merge(p.take().expect("shard aggregator present"));
    }
    acc
}

/// Splits `inputs` into `shards` logical shards and runs the full
/// randomize→accumulate→merge round for any [`BatchMechanism`] across
/// `std::thread::scope` workers (one per available core, capped at the
/// shard count).
///
/// Returns the merged aggregator, bit-identical to
/// [`accumulate_mech_sharded_sequential`] with the same arguments
/// regardless of core count or scheduling.
///
/// # Panics
/// Panics if `shards == 0` or a worker thread panics.
pub fn accumulate_mech_sharded<M>(
    mech: &M,
    inputs: &[M::Input],
    base_seed: u64,
    shards: usize,
) -> M::Aggregator
where
    M: BatchMechanism + Sync,
    M::Input: Sync,
    M::Aggregator: Send,
{
    accumulate_mech_sharded_with_workers(mech, inputs, base_seed, shards, planned_workers(shards))
}

/// [`accumulate_mech_sharded`] with an explicit worker count. The shard
/// plan — and therefore the result — is identical for every `workers`
/// value; only the wall-clock changes. Benches use `workers = 1` vs
/// `workers = planned_workers(shards)` for honest scaling comparisons.
///
/// # Panics
/// Panics if `shards == 0`, `workers == 0`, or a worker thread panics.
pub fn accumulate_mech_sharded_with_workers<M>(
    mech: &M,
    inputs: &[M::Input],
    base_seed: u64,
    shards: usize,
    workers: usize,
) -> M::Aggregator
where
    M: BatchMechanism + Sync,
    M::Input: Sync,
    M::Aggregator: Send,
{
    assert!(shards > 0, "need at least one shard");
    assert!(workers > 0, "need at least one worker");
    let shards = shards.min(inputs.len().max(1));
    let workers = workers.min(shards);
    let bounds = shard_bounds(inputs.len(), shards);
    if workers == 1 {
        return accumulate_mech_sharded_sequential(mech, inputs, base_seed, shards);
    }

    let parts = thread::scope(|s| {
        let bounds = &bounds;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                s.spawn(move || {
                    // Strided shard assignment: worker w takes shards
                    // w, w+workers, … — balanced even when per-shard cost
                    // varies with position in the input.
                    (w..bounds.len())
                        .step_by(workers)
                        .map(|i| {
                            let (lo, hi) = bounds[i];
                            (
                                i,
                                accumulate_shard(mech, &inputs[lo..hi], shard_seed(base_seed, i)),
                            )
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut parts: Vec<Option<M::Aggregator>> = (0..bounds.len()).map(|_| None).collect();
        for h in handles {
            for (i, agg) in h.join().expect("shard worker panicked") {
                parts[i] = Some(agg);
            }
        }
        parts
    });
    merge_in_order(parts)
}

/// Single-threaded reference for [`accumulate_mech_sharded`]: identical
/// shard plan, identical per-shard RNG streams, identical merge order —
/// just no threads. Exists so tests can assert the parallel path is
/// bit-identical, and as the fallback on single-core hosts.
///
/// # Panics
/// Panics if `shards == 0`.
pub fn accumulate_mech_sharded_sequential<M: BatchMechanism>(
    mech: &M,
    inputs: &[M::Input],
    base_seed: u64,
    shards: usize,
) -> M::Aggregator {
    assert!(shards > 0, "need at least one shard");
    let shards = shards.min(inputs.len().max(1));
    let parts = shard_bounds(inputs.len(), shards)
        .into_iter()
        .enumerate()
        .map(|(i, (lo, hi))| {
            Some(accumulate_shard(
                mech,
                &inputs[lo..hi],
                shard_seed(base_seed, i),
            ))
        })
        .collect();
    merge_in_order(parts)
}

/// Splits `values` into `shards` logical shards and runs the full
/// randomize→accumulate→merge round across `std::thread::scope` workers —
/// the item-domain ([`FrequencyOracle`]) face of
/// [`accumulate_mech_sharded`].
///
/// Returns the merged aggregator, bit-identical to
/// [`accumulate_sharded_sequential`] with the same arguments regardless
/// of core count or scheduling.
///
/// # Panics
/// Panics if `shards == 0` or a worker thread panics.
pub fn accumulate_sharded<O>(
    oracle: &O,
    values: &[u64],
    base_seed: u64,
    shards: usize,
) -> O::Aggregator
where
    O: FrequencyOracle + Sync,
    O::Aggregator: Send,
{
    accumulate_mech_sharded(&oracle, values, base_seed, shards)
}

/// [`accumulate_sharded`] with an explicit worker count. The shard plan —
/// and therefore the result — is identical for every `workers` value;
/// only the wall-clock changes. Benches use `workers = 1` vs
/// `workers = planned_workers(shards)` for honest scaling comparisons.
///
/// # Panics
/// Panics if `shards == 0`, `workers == 0`, or a worker thread panics.
pub fn accumulate_sharded_with_workers<O>(
    oracle: &O,
    values: &[u64],
    base_seed: u64,
    shards: usize,
    workers: usize,
) -> O::Aggregator
where
    O: FrequencyOracle + Sync,
    O::Aggregator: Send,
{
    accumulate_mech_sharded_with_workers(&oracle, values, base_seed, shards, workers)
}

/// Single-threaded reference for [`accumulate_sharded`]: identical shard
/// plan, identical per-shard RNG streams, identical merge order — just no
/// threads. Exists so tests can assert the parallel path is bit-identical,
/// and as the fallback on single-core hosts.
///
/// # Panics
/// Panics if `shards == 0`.
pub fn accumulate_sharded_sequential<O: FrequencyOracle>(
    oracle: &O,
    values: &[u64],
    base_seed: u64,
    shards: usize,
) -> O::Aggregator {
    accumulate_mech_sharded_sequential(&oracle, values, base_seed, shards)
}

/// Parallel counterpart of `ldp_core::fo::collect_counts`: runs a full
/// sharded collection round and returns the estimated count vector.
pub fn collect_counts_parallel<O>(
    oracle: &O,
    values: &[u64],
    base_seed: u64,
    shards: usize,
) -> Vec<f64>
where
    O: FrequencyOracle + Sync,
    O::Aggregator: Send,
{
    accumulate_sharded(oracle, values, base_seed, shards).estimate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_core::fo::{
        CohortLocalHashing, DirectEncoding, HadamardResponse, OptimizedLocalHashing,
        OptimizedUnaryEncoding, SubsetSelection, SummationHistogramEncoding,
        ThresholdHistogramEncoding,
    };
    use ldp_core::Epsilon;

    fn eps(e: f64) -> Epsilon {
        Epsilon::new(e).expect("valid eps")
    }

    fn values(n: usize, d: u64) -> Vec<u64> {
        (0..n).map(|i| (i as u64).wrapping_mul(31) % d).collect()
    }

    /// The acceptance contract: parallel collection is bit-identical to
    /// the sequential reference, for every oracle family member
    /// (including the floating-point SHE state, since both sides use the
    /// same shard plan and merge order).
    #[test]
    fn parallel_bit_identical_to_sequential_for_all_oracles() {
        let d = 32u64;
        let vals = values(4_000, d);
        macro_rules! check {
            ($oracle:expr) => {{
                let oracle = $oracle;
                for &shards in &[1usize, 3, 8, 64] {
                    let par = accumulate_sharded(&oracle, &vals, 42, shards).estimate();
                    let seq = accumulate_sharded_sequential(&oracle, &vals, 42, shards).estimate();
                    assert_eq!(par.len(), seq.len());
                    for (i, (a, b)) in par.iter().zip(&seq).enumerate() {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "shards={shards} item {i}: {a} != {b}"
                        );
                    }
                }
            }};
        }
        check!(DirectEncoding::new(d, eps(1.0)).expect("domain"));
        check!(OptimizedUnaryEncoding::new(d, eps(1.0)).expect("domain"));
        check!(ThresholdHistogramEncoding::new(d, eps(1.0)).expect("domain"));
        check!(SummationHistogramEncoding::new(d, eps(1.0)).expect("domain"));
        check!(SubsetSelection::new(d, eps(1.0)));
        check!(HadamardResponse::new(d, eps(1.0)));
        check!(OptimizedLocalHashing::new(d, eps(1.0)));
        check!(CohortLocalHashing::optimized(d, 128, eps(1.0)));
    }

    /// The shard plan (not the worker count) defines the result, so the
    /// same seed and shard count always reproduce the same estimate.
    #[test]
    fn deterministic_across_runs() {
        let oracle = CohortLocalHashing::optimized(64, 256, eps(2.0));
        let vals = values(10_000, 64);
        let a = collect_counts_parallel(&oracle, &vals, 7, 16);
        let b = collect_counts_parallel(&oracle, &vals, 7, 16);
        assert_eq!(a, b);
        let c = collect_counts_parallel(&oracle, &vals, 8, 16);
        assert_ne!(a, c, "different base seed must change the noise draw");
    }

    #[test]
    fn parallel_collection_is_unbiased() {
        let d = 16u64;
        let n = 30_000usize;
        let oracle = CohortLocalHashing::optimized(d, 512, eps(2.0));
        let vals: Vec<u64> = (0..n).map(|u| (u % 4) as u64).collect();
        let est = collect_counts_parallel(&oracle, &vals, 99, 32);
        let sd = oracle.count_variance(n, 0.25).sqrt();
        for (i, &e) in est.iter().enumerate().take(4) {
            assert!(
                (e - n as f64 / 4.0).abs() < 5.0 * sd,
                "item {i}: est={e} sd={sd}"
            );
        }
    }

    /// The worker count is pure scheduling: every explicit worker count
    /// reproduces the same bit-identical aggregate.
    #[test]
    fn worker_count_does_not_change_results() {
        let oracle = OptimizedUnaryEncoding::new(64, eps(1.0)).expect("domain");
        let vals = values(6_000, 64);
        let reference = accumulate_sharded_sequential(&oracle, &vals, 13, 12).estimate();
        for &workers in &[1usize, 2, 3, 8, 32] {
            let got = accumulate_sharded_with_workers(&oracle, &vals, 13, 12, workers).estimate();
            assert_eq!(got, reference, "workers={workers}");
        }
    }

    #[test]
    fn planned_workers_bounded_by_shards() {
        assert_eq!(planned_workers(1), 1);
        assert!(planned_workers(64) >= 1);
        assert!(planned_workers(4) <= 4);
    }

    #[test]
    fn recommended_shards_sane() {
        assert_eq!(recommended_shards(0, 8), 1);
        assert_eq!(recommended_shards(100, 8), 1);
        // Large inputs: a few shards per worker, capped.
        let s = recommended_shards(1_000_000, 8);
        assert!((8..=32).contains(&s), "s={s}");
        // Small inputs never produce undersized shards.
        assert_eq!(recommended_shards(8192, 64), 2);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let oracle = DirectEncoding::new(8, eps(1.0)).expect("domain");
        accumulate_sharded_with_workers(&oracle, &[1], 0, 4, 0);
    }

    #[test]
    fn empty_and_tiny_populations() {
        let oracle = DirectEncoding::new(8, eps(1.0)).expect("domain");
        let agg = accumulate_sharded(&oracle, &[], 1, 16);
        assert_eq!(agg.reports(), 0);
        let agg = accumulate_sharded(&oracle, &[3], 1, 16);
        assert_eq!(agg.reports(), 1);
    }

    #[test]
    fn shard_bounds_cover_input_exactly() {
        for len in [0usize, 1, 7, 64, 65, 1000] {
            for shards in [1usize, 2, 7, 64] {
                let bounds = shard_bounds(len, shards.min(len.max(1)));
                assert_eq!(bounds.first().map(|b| b.0), Some(0));
                assert_eq!(bounds.last().map(|b| b.1), Some(len));
                for w in bounds.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "shards must tile contiguously");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let oracle = DirectEncoding::new(8, eps(1.0)).expect("domain");
        accumulate_sharded_sequential(&oracle, &[1], 0, 0);
    }

    /// A minimal non-oracle mechanism over `f64` inputs: each input `x`
    /// contributes one Bernoulli(`x`) bit. Stands in for the real
    /// non-oracle mechanisms (1BitMean, telemetry rounds) so the engine's
    /// mech-generic face is tested without a cross-crate dev-dependency.
    struct CoinMech;

    struct CoinAgg {
        ones: u64,
        n: usize,
    }

    impl ldp_core::snapshot::StateSnapshot for CoinAgg {
        fn state_tag(&self) -> u8 {
            ldp_core::snapshot::state_tag::MS_ONE_BIT_MEAN
        }

        fn snapshot_payload(&self, out: &mut Vec<u8>) {
            ldp_core::snapshot::put_count(out, self.n);
            ldp_core::wire::put_uvarint(out, self.ones);
        }

        fn restore_payload(
            &mut self,
            r: &mut ldp_core::wire::WireReader<'_>,
        ) -> ldp_core::Result<()> {
            self.n = ldp_core::snapshot::get_count(r)?;
            self.ones = r.uvarint()?;
            Ok(())
        }
    }

    impl ldp_core::fo::FoAggregator for CoinAgg {
        type Report = bool;

        fn accumulate(&mut self, report: &bool) {
            self.ones += u64::from(*report);
            self.n += 1;
        }

        fn reports(&self) -> usize {
            self.n
        }

        fn estimate(&self) -> Vec<f64> {
            vec![self.ones as f64]
        }

        fn merge(&mut self, other: Self) {
            self.ones += other.ones;
            self.n += other.n;
        }
    }

    impl BatchMechanism for CoinMech {
        type Input = f64;
        type Aggregator = CoinAgg;

        fn new_aggregator(&self) -> CoinAgg {
            CoinAgg { ones: 0, n: 0 }
        }

        fn accumulate_batch<R: rand::RngCore>(
            &self,
            inputs: &[f64],
            rng: &mut R,
            agg: &mut CoinAgg,
        ) {
            use rand::Rng;
            for &x in inputs {
                agg.ones += u64::from(rng.gen_bool(x));
                agg.n += 1;
            }
        }
    }

    /// The mech-generic engine honors the same determinism contract as
    /// the oracle face: parallel == sequential, worker count irrelevant,
    /// over a non-`u64` input type.
    #[test]
    fn mech_engine_parallel_bit_identical_to_sequential() {
        let inputs: Vec<f64> = (0..5_000).map(|i| (i % 100) as f64 / 100.0).collect();
        for &shards in &[1usize, 3, 16] {
            let seq = accumulate_mech_sharded_sequential(&CoinMech, &inputs, 5, shards);
            let par = accumulate_mech_sharded(&CoinMech, &inputs, 5, shards);
            assert_eq!(par.ones, seq.ones, "shards={shards}");
            assert_eq!(par.n, seq.n);
            for &workers in &[1usize, 2, 7] {
                let w =
                    accumulate_mech_sharded_with_workers(&CoinMech, &inputs, 5, shards, workers);
                assert_eq!(w.ones, seq.ones, "shards={shards} workers={workers}");
            }
        }
    }

    /// The oracle face is a thin wrapper over the mech core: both entry
    /// points must produce identical aggregates for identical arguments.
    #[test]
    fn oracle_face_matches_mech_core() {
        let oracle = OptimizedUnaryEncoding::new(32, eps(1.0)).expect("domain");
        let vals = values(3_000, 32);
        let via_oracle = accumulate_sharded(&oracle, &vals, 21, 8).estimate();
        let via_mech = accumulate_mech_sharded(&&oracle, &vals, 21, 8).estimate();
        assert_eq!(via_oracle, via_mech);
    }
}
