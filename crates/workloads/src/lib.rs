//! # `ldp-workloads` — synthetic workloads, metrics, and the experiment
//! harness
//!
//! The deployed systems the tutorial surveys were evaluated on proprietary
//! data (Chrome home pages, iOS keyboard streams, Windows telemetry). This
//! crate provides the synthetic equivalents used throughout the
//! reproduction — per DESIGN.md's substitution table, the estimators under
//! test consume only the *frequency profile* of the data, which the
//! generators here control exactly:
//!
//! * [`gen`] — Zipf, uniform, and discretized-Gaussian categorical
//!   populations; bounded numeric streams with drift for telemetry.
//! * [`metrics`] — the accuracy measures the source papers report: MSE,
//!   MAE, max error, KL divergence, total variation, top-k
//!   precision/recall/F1, and normalized cumulative rank.
//! * [`harness`] — multi-trial experiment running with mean ± std
//!   aggregation and aligned-column table printing for the `ldp-bench`
//!   reproduction binaries.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod gen;
pub mod harness;
pub mod metrics;

pub use gen::{NumericStream, ZipfGenerator};
pub use harness::{ExperimentTable, Trials};
