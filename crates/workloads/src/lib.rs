//! # `ldp-workloads` — synthetic workloads, metrics, and the experiment
//! harness
//!
//! The deployed systems the tutorial surveys were evaluated on proprietary
//! data (Chrome home pages, iOS keyboard streams, Windows telemetry). This
//! crate provides the synthetic equivalents used throughout the
//! reproduction — per DESIGN.md's substitution table, the estimators under
//! test consume only the *frequency profile* of the data, which the
//! generators here control exactly:
//!
//! * [`gen`] — Zipf, uniform, and discretized-Gaussian categorical
//!   populations; bounded numeric streams with drift for telemetry.
//! * [`metrics`] — the accuracy measures the source papers report: MSE,
//!   MAE, max error, KL divergence, total variation, top-k
//!   precision/recall/F1, and normalized cumulative rank.
//! * [`harness`] — multi-trial experiment running with mean ± std
//!   aggregation and aligned-column table printing for the `ldp-bench`
//!   reproduction binaries.
//! * [`parallel`] — the sharded parallel collection engine: splits users
//!   across `std::thread::scope` workers, accumulates shard-local
//!   aggregators, and combines them with `FoAggregator::merge` —
//!   deterministically (fixed logical shards, seed-derived RNG streams,
//!   shard-order merging), so results are bit-identical across core
//!   counts.
//! * [`service`] — the deployment-facing entry point:
//!   [`service::CollectorService`] owns a protocol descriptor plus a
//!   type-erased aggregator and ingests **serialized** report frames
//!   (`&[u8]` in, estimates out) for any mechanism the workspace
//!   registry can build, with [`service::WireClient`] as the matching
//!   client half.
//! * [`pipeline`] — the concurrent collector fleet over that byte path:
//!   [`pipeline::CollectorPipeline`] runs N ingest workers pulling
//!   frame batches from bounded queues (block or drop-with-counter
//!   backpressure) into per-shard services, merged in shard order at
//!   snapshot time — bit-identical across worker counts, with
//!   per-worker throughput and queue stats in
//!   [`pipeline::PipelineStats`].
//! * [`window`] — event-time sliding windows over the service layer:
//!   [`window::WindowRing`] keeps one mergeable delta per window plus a
//!   running total retired by **exact subtraction** (rebuild fallback
//!   for non-subtractive states), with optional exponential decay
//!   weighting, whole-ring checkpoint/restore, and
//!   [`window::LongitudinalAccountant`] metering per-device ε over a
//!   rolling horizon.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod gen;
pub mod harness;
pub mod metrics;
pub mod parallel;
pub mod pipeline;
pub mod service;
pub mod window;

pub use gen::{NumericStream, ZipfGenerator};
pub use harness::{ExperimentTable, Trials};
pub use parallel::{accumulate_sharded, accumulate_sharded_sequential, collect_counts_parallel};
pub use pipeline::{BackpressurePolicy, CollectorPipeline, PipelineConfig, PipelineStats};
pub use service::{
    workspace_planner, workspace_registry, CollectorService, Plan, Planner, WireClient,
    WorkloadSpec,
};
pub use window::{LongitudinalAccountant, WindowConfig, WindowRing, WindowStats};
