//! Accuracy metrics used by the reproduced papers.
//!
//! Each surveyed system reports a different headline number — RAPPOR
//! reports detected-candidate precision/recall, Wang et al. report count
//! MSE, Apple reports top-k overlap, Microsoft reports absolute mean
//! error. All are here, over plain `&[f64]` so every crate in the
//! workspace can use them without conversion.

/// Mean squared error between estimate and truth.
///
/// # Panics
/// Panics if lengths differ or are zero.
pub fn mse(estimate: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(estimate.len(), truth.len(), "length mismatch");
    assert!(!estimate.is_empty(), "empty input");
    estimate
        .iter()
        .zip(truth)
        .map(|(e, t)| (e - t) * (e - t))
        .sum::<f64>()
        / estimate.len() as f64
}

/// Mean absolute error.
///
/// # Panics
/// Panics if lengths differ or are zero.
pub fn mae(estimate: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(estimate.len(), truth.len(), "length mismatch");
    assert!(!estimate.is_empty(), "empty input");
    estimate
        .iter()
        .zip(truth)
        .map(|(e, t)| (e - t).abs())
        .sum::<f64>()
        / estimate.len() as f64
}

/// Maximum absolute error (worst cell).
///
/// # Panics
/// Panics if lengths differ or are zero.
pub fn max_error(estimate: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(estimate.len(), truth.len(), "length mismatch");
    assert!(!estimate.is_empty(), "empty input");
    estimate
        .iter()
        .zip(truth)
        .map(|(e, t)| (e - t).abs())
        .fold(0.0, f64::max)
}

/// Total variation distance between two count vectors (normalized to
/// distributions; negative estimates are clamped to 0 for normalization).
///
/// # Panics
/// Panics if lengths differ or are zero.
pub fn total_variation(estimate: &[f64], truth: &[f64]) -> f64 {
    let p = normalize(estimate);
    let q = normalize(truth);
    0.5 * p.iter().zip(&q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

/// KL divergence `KL(truth ‖ estimate)` between normalized count vectors,
/// with additive smoothing `1e-9` to keep it finite.
///
/// # Panics
/// Panics if lengths differ or are zero.
pub fn kl_divergence(truth: &[f64], estimate: &[f64]) -> f64 {
    let p = normalize(truth);
    let q = normalize(estimate);
    p.iter()
        .zip(&q)
        .map(|(&pi, &qi)| {
            if pi <= 0.0 {
                0.0
            } else {
                pi * (pi / (qi + 1e-9)).ln()
            }
        })
        .sum()
}

fn normalize(xs: &[f64]) -> Vec<f64> {
    assert!(!xs.is_empty(), "empty input");
    let clamped: Vec<f64> = xs.iter().map(|&x| x.max(0.0)).collect();
    let total: f64 = clamped.iter().sum();
    if total <= 0.0 {
        vec![1.0 / xs.len() as f64; xs.len()]
    } else {
        clamped.iter().map(|&x| x / total).collect()
    }
}

/// Indices of the top-k entries of a score vector, descending.
pub fn top_k(scores: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    idx.truncate(k);
    idx
}

/// Top-k set metrics between an estimated and true score vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopKMetrics {
    /// Fraction of reported top-k items that are truly top-k.
    pub precision: f64,
    /// Fraction of true top-k items that were reported.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

/// Computes precision/recall/F1 of the estimated top-k against the true
/// top-k.
///
/// # Panics
/// Panics if `k == 0` or lengths differ.
pub fn top_k_metrics(estimate: &[f64], truth: &[f64], k: usize) -> TopKMetrics {
    assert!(k > 0, "k must be positive");
    assert_eq!(estimate.len(), truth.len(), "length mismatch");
    let est_top: std::collections::HashSet<usize> = top_k(estimate, k).into_iter().collect();
    let true_top: std::collections::HashSet<usize> = top_k(truth, k).into_iter().collect();
    let hits = est_top.intersection(&true_top).count() as f64;
    let precision = hits / est_top.len().max(1) as f64;
    let recall = hits / true_top.len().max(1) as f64;
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    TopKMetrics {
        precision,
        recall,
        f1,
    }
}

/// Normalized cumulative rank (NCR): rank-weighted top-k overlap — the
/// metric of the heavy-hitter literature. The true top-k item at rank `r`
/// is worth `k − r` points; NCR is the score of the reported set divided
/// by the maximum possible.
///
/// # Panics
/// Panics if `k == 0` or lengths differ.
pub fn ncr(estimate: &[f64], truth: &[f64], k: usize) -> f64 {
    assert!(k > 0, "k must be positive");
    assert_eq!(estimate.len(), truth.len(), "length mismatch");
    let true_top = top_k(truth, k);
    let mut weight = std::collections::HashMap::new();
    for (rank, &item) in true_top.iter().enumerate() {
        weight.insert(item, (k - rank) as f64);
    }
    let max_score: f64 = (1..=k).map(|x| x as f64).sum();
    let score: f64 = top_k(estimate, k)
        .into_iter()
        .filter_map(|i| weight.get(&i))
        .sum();
    score / max_score
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_mae_max_basics() {
        let e = [1.0, 2.0, 3.0];
        let t = [1.0, 4.0, 0.0];
        assert!((mse(&e, &t) - (0.0 + 4.0 + 9.0) / 3.0).abs() < 1e-12);
        assert!((mae(&e, &t) - (0.0 + 2.0 + 3.0) / 3.0).abs() < 1e-12);
        assert!((max_error(&e, &t) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn identical_vectors_zero_distance() {
        let v = [5.0, 3.0, 2.0];
        assert_eq!(mse(&v, &v), 0.0);
        assert_eq!(total_variation(&v, &v), 0.0);
        assert!(kl_divergence(&v, &v).abs() < 1e-6);
    }

    #[test]
    fn tv_bounded_by_one() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        assert!((total_variation(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tv_handles_negative_estimates() {
        // Debiased LDP estimates go negative; TV must stay defined.
        let est = [-5.0, 10.0, 5.0];
        let truth = [0.0, 10.0, 5.0];
        let tv = total_variation(&est, &truth);
        assert!((0.0..=1.0).contains(&tv));
    }

    #[test]
    fn top_k_metrics_perfect_and_disjoint() {
        let truth = [10.0, 8.0, 6.0, 1.0, 0.5, 0.1];
        let perfect = top_k_metrics(&truth, &truth, 3);
        assert_eq!(perfect.precision, 1.0);
        assert_eq!(perfect.recall, 1.0);
        assert_eq!(perfect.f1, 1.0);
        let inverted: Vec<f64> = truth.iter().map(|x| -x).collect();
        let bad = top_k_metrics(&inverted, &truth, 3);
        assert_eq!(bad.precision, 0.0);
        assert_eq!(bad.f1, 0.0);
    }

    #[test]
    fn ncr_rank_sensitive() {
        let truth = [10.0, 8.0, 6.0, 1.0];
        // Estimate that finds items 0 and 1 but misses 2 (swaps in 3).
        let est = [10.0, 8.0, 0.0, 6.0];
        let score = ncr(&est, &truth, 3);
        // hits: item 0 (weight 3), item 1 (weight 2); max = 6 -> 5/6.
        assert!((score - 5.0 / 6.0).abs() < 1e-12);
        assert_eq!(ncr(&truth, &truth, 3), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        mse(&[1.0], &[1.0, 2.0]);
    }
}
