//! Synthetic population generators.
//!
//! Frequency-oracle accuracy depends only on the frequency vector, so a
//! controlled synthetic profile is a *better* experimental substrate than
//! a fixed real dataset: the skew parameter is the x-axis of several
//! reproduced figures. The RAPPOR paper itself validates decoding on
//! Zipf- and normal-shaped synthetic populations.

use rand::Rng;

/// Zipf-distributed categorical values over `[0, d)`:
/// `P(i) ∝ 1/(i+1)^s`.
///
/// Uses precomputed inverse-CDF sampling — O(log d) per draw.
///
/// # Examples
/// ```
/// use ldp_workloads::ZipfGenerator;
/// use rand::SeedableRng;
/// let zipf = ZipfGenerator::new(100, 1.1).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let sample = zipf.sample_n(10_000, &mut rng);
/// let zeros = sample.iter().filter(|&&v| v == 0).count();
/// let nineties = sample.iter().filter(|&&v| v == 90).count();
/// assert!(zeros > 50 * nineties.max(1) / 10);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfGenerator {
    cdf: Vec<f64>,
    probabilities: Vec<f64>,
}

impl ZipfGenerator {
    /// Creates a Zipf(s) distribution over `d` items.
    ///
    /// # Errors
    /// Returns an error string if `d == 0` or `s < 0` (s = 0 degenerates
    /// to uniform, which is allowed).
    pub fn new(d: u64, s: f64) -> Result<Self, String> {
        if d == 0 {
            return Err("domain must be non-empty".into());
        }
        if !(s.is_finite() && s >= 0.0) {
            return Err(format!("skew must be finite and non-negative, got {s}"));
        }
        let weights: Vec<f64> = (0..d).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let probabilities: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let mut cdf = Vec::with_capacity(d as usize);
        let mut run = 0.0;
        for p in &probabilities {
            run += p;
            cdf.push(run);
        }
        // Guard against FP drift at the top.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Ok(Self { cdf, probabilities })
    }

    /// Domain size.
    pub fn domain(&self) -> u64 {
        self.cdf.len() as u64
    }

    /// The exact item probabilities.
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }

    /// Expected count vector for a population of `n`.
    pub fn expected_counts(&self, n: usize) -> Vec<f64> {
        self.probabilities.iter().map(|p| p * n as f64).collect()
    }

    /// Draws one value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u) as u64
    }

    /// Draws `n` values.
    pub fn sample_n<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<u64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Uniform categorical values over `[0, d)`.
pub fn uniform_population<R: Rng + ?Sized>(n: usize, d: u64, rng: &mut R) -> Vec<u64> {
    (0..n).map(|_| rng.gen_range(0..d)).collect()
}

/// Discretized Gaussian over `[0, d)`: values cluster around `d/2` with
/// the given relative standard deviation (as a fraction of `d`).
pub fn gaussian_population<R: Rng + ?Sized>(
    n: usize,
    d: u64,
    rel_sd: f64,
    rng: &mut R,
) -> Vec<u64> {
    assert!(d > 0 && rel_sd > 0.0, "need positive domain and spread");
    let mean = d as f64 / 2.0;
    let sd = rel_sd * d as f64;
    (0..n)
        .map(|_| {
            // Box–Muller.
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (mean + sd * z).round().clamp(0.0, (d - 1) as f64) as u64
        })
        .collect()
}

/// Exact count histogram of a categorical population.
///
/// # Panics
/// Panics if any value is `≥ d`.
pub fn exact_counts(values: &[u64], d: u64) -> Vec<f64> {
    let mut counts = vec![0.0; d as usize];
    for &v in values {
        assert!(v < d, "value {v} outside domain {d}");
        counts[v as usize] += 1.0;
    }
    counts
}

/// A bounded numeric per-user stream with drift — the telemetry workload
/// for the Microsoft reproduction: each user has a base level that slowly
/// drifts, plus per-round jitter.
#[derive(Debug, Clone)]
pub struct NumericStream {
    max_value: f64,
    bases: Vec<f64>,
    drift_per_round: f64,
    jitter: f64,
}

impl NumericStream {
    /// Creates a stream for `users` users over `[0, max_value]`, with
    /// per-round base drift and jitter expressed as fractions of
    /// `max_value`.
    ///
    /// # Panics
    /// Panics on non-positive `max_value` or negative drift/jitter.
    pub fn new<R: Rng + ?Sized>(
        users: usize,
        max_value: f64,
        drift_per_round: f64,
        jitter: f64,
        rng: &mut R,
    ) -> Self {
        assert!(max_value > 0.0, "max_value must be positive");
        assert!(
            drift_per_round >= 0.0 && jitter >= 0.0,
            "drift/jitter must be non-negative"
        );
        let bases = (0..users).map(|_| rng.gen_range(0.0..max_value)).collect();
        Self {
            max_value,
            bases,
            drift_per_round,
            jitter,
        }
    }

    /// Number of users.
    pub fn users(&self) -> usize {
        self.bases.len()
    }

    /// Upper bound of the value range.
    pub fn max_value(&self) -> f64 {
        self.max_value
    }

    /// The values at a given round: base + round·drift (wrapped) + jitter.
    pub fn round_values<R: Rng + ?Sized>(&self, round: usize, rng: &mut R) -> Vec<f64> {
        self.bases
            .iter()
            .map(|&b| {
                let drifted =
                    (b + round as f64 * self.drift_per_round * self.max_value) % self.max_value;
                let j = if self.jitter > 0.0 {
                    rng.gen_range(-self.jitter..self.jitter) * self.max_value
                } else {
                    0.0
                };
                (drifted + j).clamp(0.0, self.max_value)
            })
            .collect()
    }

    /// The exact mean at a round (requires the same rng stream discipline
    /// as `round_values`; for tests use jitter = 0).
    pub fn exact_mean_no_jitter(&self, round: usize) -> f64 {
        self.bases
            .iter()
            .map(|&b| (b + round as f64 * self.drift_per_round * self.max_value) % self.max_value)
            .sum::<f64>()
            / self.bases.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_probabilities_sum_to_one() {
        let z = ZipfGenerator::new(50, 1.2).unwrap();
        let sum: f64 = z.probabilities().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(z.probabilities()[0] > z.probabilities()[10]);
    }

    #[test]
    fn zipf_zero_skew_is_uniform() {
        let z = ZipfGenerator::new(10, 0.0).unwrap();
        for &p in z.probabilities() {
            assert!((p - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_sampling_matches_probabilities() {
        let z = ZipfGenerator::new(20, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let counts = exact_counts(&z.sample_n(n, &mut rng), 20);
        for (i, (&c, &e)) in counts.iter().zip(&z.expected_counts(n)).enumerate() {
            let sd = (e.max(1.0)).sqrt();
            assert!((c - e).abs() < 6.0 * sd + 5.0, "item {i}: {c} vs {e}");
        }
    }

    #[test]
    fn zipf_validation() {
        assert!(ZipfGenerator::new(0, 1.0).is_err());
        assert!(ZipfGenerator::new(10, -1.0).is_err());
        assert!(ZipfGenerator::new(10, f64::NAN).is_err());
    }

    #[test]
    fn gaussian_clusters_at_center() {
        let mut rng = StdRng::seed_from_u64(2);
        let pop = gaussian_population(50_000, 100, 0.1, &mut rng);
        let counts = exact_counts(&pop, 100);
        assert!(counts[50] > counts[10] * 3.0, "center should dominate");
        assert!(counts[50] > counts[90] * 3.0);
    }

    #[test]
    fn uniform_covers_domain() {
        let mut rng = StdRng::seed_from_u64(3);
        let pop = uniform_population(10_000, 16, &mut rng);
        let counts = exact_counts(&pop, 16);
        for (i, &c) in counts.iter().enumerate() {
            assert!((c - 625.0).abs() < 150.0, "bucket {i}: {c}");
        }
    }

    #[test]
    fn stream_values_bounded_and_drifting() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = NumericStream::new(100, 60.0, 0.1, 0.02, &mut rng);
        let r0 = s.round_values(0, &mut rng);
        let r5 = s.round_values(5, &mut rng);
        assert!(r0.iter().all(|&v| (0.0..=60.0).contains(&v)));
        // Drift changes values.
        let moved = r0
            .iter()
            .zip(&r5)
            .filter(|(a, b)| (*a - *b).abs() > 1.0)
            .count();
        assert!(moved > 50, "drift should move most values: {moved}");
    }

    #[test]
    fn exact_mean_consistent() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = NumericStream::new(1000, 10.0, 0.0, 0.0, &mut rng);
        let vals = s.round_values(0, &mut rng);
        let mean = vals.iter().sum::<f64>() / 1000.0;
        assert!((mean - s.exact_mean_no_jitter(0)).abs() < 1e-9);
    }
}
