//! The experiment harness: seeded multi-trial runs and table printing.
//!
//! Every `ldp-bench` binary follows the same shape — sweep a parameter,
//! run several seeded trials per point, report mean ± std of a metric,
//! print a table whose rows mirror the reproduced figure. This module
//! holds that shared machinery so the binaries stay declarative.

/// Mean and standard deviation of a set of trial outcomes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialStats {
    /// Sample mean across trials.
    pub mean: f64,
    /// Sample standard deviation (population form) across trials.
    pub std: f64,
    /// Number of trials aggregated.
    pub trials: usize,
}

impl std::fmt::Display for TrialStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4} ± {:.4}", self.mean, self.std)
    }
}

/// Seeded multi-trial runner.
#[derive(Debug, Clone, Copy)]
pub struct Trials {
    /// Number of trials per configuration.
    pub count: usize,
    /// Base seed; trial `t` uses `base_seed + t`.
    pub base_seed: u64,
}

impl Trials {
    /// Creates a runner with `count` trials from `base_seed`.
    ///
    /// # Panics
    /// Panics if `count == 0`.
    pub fn new(count: usize, base_seed: u64) -> Self {
        assert!(count > 0, "need at least one trial");
        Self { count, base_seed }
    }

    /// Runs `f(seed)` for each trial seed and aggregates the returned
    /// metric.
    pub fn run<F: FnMut(u64) -> f64>(&self, mut f: F) -> TrialStats {
        let outcomes: Vec<f64> = (0..self.count)
            .map(|t| f(self.base_seed + t as u64))
            .collect();
        let mean = outcomes.iter().sum::<f64>() / outcomes.len() as f64;
        let var = outcomes
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / outcomes.len() as f64;
        TrialStats {
            mean,
            std: var.sqrt(),
            trials: self.count,
        }
    }
}

/// An aligned-column text table for experiment output.
#[derive(Debug, Clone)]
pub struct ExperimentTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ExperimentTable {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trials_aggregate_correctly() {
        let t = Trials::new(4, 10);
        let mut seeds = Vec::new();
        let stats = t.run(|s| {
            seeds.push(s);
            s as f64
        });
        assert_eq!(seeds, vec![10, 11, 12, 13]);
        assert!((stats.mean - 11.5).abs() < 1e-12);
        assert!((stats.std - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(stats.trials, 4);
    }

    #[test]
    fn deterministic_across_runs() {
        let t = Trials::new(3, 7);
        let a = t.run(|s| (s as f64).sin());
        let b = t.run(|s| (s as f64).sin());
        assert_eq!(a, b);
    }

    #[test]
    fn table_renders_aligned() {
        let mut table = ExperimentTable::new("demo", &["eps", "variance"]);
        table.row(&["0.5".into(), "123.4".into()]);
        table.row(&["4".into(), "1.2".into()]);
        let s = table.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("eps"));
        let lines: Vec<&str> = s.lines().collect();
        // header + rule + 2 rows + title
        assert_eq!(lines.len(), 5);
        // Right-aligned columns: all rows same width.
        assert_eq!(lines[1].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn wrong_arity_panics() {
        let mut table = ExperimentTable::new("x", &["a", "b"]);
        table.row(&["only-one".into()]);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        Trials::new(0, 0);
    }
}
