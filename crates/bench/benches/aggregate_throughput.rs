//! Server-side aggregation and estimation cost — accumulate must be O(1)
//! amortized per report, estimation linear with small constants.
//!
//! Besides the criterion groups, this bench runs the **old-vs-new
//! comparisons** and emits the measurements to `BENCH_aggregate.json` at
//! the workspace root, so the perf trajectory is recorded run over run:
//!
//! * full-domain OLH estimation: raw-report rescan vs cohort count
//!   matrix (`decode.olh_estimate_speedup`);
//! * client-side randomize→accumulate: the frozen pre-batch-engine
//!   scalar path (one Bernoulli draw per bit through `dyn RngCore`, one
//!   `BitVec` per report) vs the fused geometric-skip batch path
//!   (`batch_speedup`, sequential on both sides);
//! * the whole collect loop: legacy scalar collection vs the fused batch
//!   path fanned out across the parallel engine's actual worker count
//!   (`collect_speedup`), with the pure thread contribution isolated as
//!   `thread_scaling` (fused 1 worker vs fused N workers) and the real
//!   worker count recorded as `threads` — on a single-core host
//!   `thread_scaling` sits at ~1 and `collect_speedup` is the batch
//!   engine alone; on a multi-core host the two multiply;
//! * the industrial mechanisms: Apple CMS legacy scalar (fresh ±1 row +
//!   per-coordinate `dyn` draws) vs the fused geometric-skip counter path
//!   (`apple_batch_speedup`), and Microsoft dBitFlip legacy scalar
//!   (per-report `O(k)` Fisher–Yates pool + per-bucket `dyn` draws) vs
//!   the fused rejection+skip path (`microsoft_batch_speedup`);
//! * the wire layer: the fused in-process OUE collect vs collecting the
//!   same traffic as bytes through `CollectorService` (frame parse +
//!   decode + validate + accumulate) — `wire_overhead`, gated < 1.3× in
//!   CI, with the client-fleet framing cost and end-to-end ratio
//!   recorded alongside (`wire_client_frame_ns`, `wire_e2e_overhead`);
//! * the concurrent pipeline: the same pre-framed traffic through the
//!   bounded-queue collector fleet, thread spawn to shard-order merge
//!   (`pipeline_ingest_ns`), with the peak queue depth recorded as
//!   `pipeline_queue_hwm`;
//! * the durable-snapshot layer: one snapshot→restore cycle of the
//!   loaded OLH-C aggregator (the C×g count matrix) and its BLOB size
//!   (`snapshot_roundtrip_ns`, `snapshot_bytes`);
//! * the **decode kernels**, recorded in a nested `"decode"` sub-object
//!   so the collect-side and decode-side trajectories stay separable:
//!   the tiled radix-4 FWHT vs the frozen radix-2 butterfly
//!   (`fwht_tiled_speedup`, bit-identical outputs), HCMS
//!   decode-once-query-many vs the per-query full-transform baseline
//!   (`hcms_decode_speedup`, bit-identical estimates), SFP
//!   candidate-frontier decode vs the frozen exhaustive oracle
//!   (`sfp_decode_speedup`, same discovered-word set), RAPPOR
//!   sparse active-set LASSO vs the frozen dense pipeline
//!   (`rappor_lasso_speedup`, statistically equivalent), and the
//!   batched inverse-CDF Laplace SHE randomize vs the frozen per-draw
//!   loop (`she_randomize_speedup`). The full-domain OLH estimation
//!   comparison lives there too (`olh_estimate_speedup`) — it is a
//!   decode-side measurement.
//!
//! Set `LDP_BENCH_SMOKE=1` for a seconds-scale CI smoke configuration,
//! and `LDP_BENCH_OUT=<path>` to redirect the JSON.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ldp_apple::cms::CmsOracle;
use ldp_apple::hcms::HcmsProtocol;
use ldp_apple::sfp::{SfpConfig, SfpDiscovery};
use ldp_bench::legacy::{
    legacy_cms_randomize, legacy_dbitflip_randomize, legacy_hcms_estimate, legacy_rappor_decode,
    legacy_she_randomize_accumulate, legacy_the_randomize, legacy_unary_randomize,
};
use ldp_core::fo::{
    CohortLocalHashing, FoAggregator, FrequencyOracle, LocalHashing, OptimizedLocalHashing,
    OptimizedUnaryEncoding, SummationHistogramEncoding, ThresholdHistogramEncoding,
};
use ldp_core::protocol::{MechanismKind, ProtocolDescriptor};
use ldp_core::Epsilon;
use ldp_microsoft::DBitFlip;
use ldp_planner::{workspace_planner, Plan, Planner, WorkloadSpec};
use ldp_rappor::{RapporAggregator, RapporClient, RapporParams};
use ldp_workloads::gen::{exact_counts, ZipfGenerator};
use ldp_workloads::parallel::{
    accumulate_sharded_sequential, accumulate_sharded_with_workers, planned_workers, shard_seed,
};
use ldp_workloads::pipeline::{
    split_frames, BackpressurePolicy, CollectorPipeline, PipelineConfig,
};
use ldp_workloads::service::{CollectorService, WireClient};
use ldp_workloads::window::{WindowConfig, WindowRing};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn bench_aggregate(c: &mut Criterion) {
    let eps = Epsilon::new(1.0).expect("valid eps");
    let mut rng = StdRng::seed_from_u64(2);
    let n = 10_000usize;

    let mut group = c.benchmark_group("server_aggregate");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(n as u64));

    // OUE: bit-packed accumulate over d=1024.
    {
        let oracle = OptimizedUnaryEncoding::new(1024, eps).expect("valid domain");
        let reports: Vec<_> = (0..n)
            .map(|i| oracle.randomize((i % 1024) as u64, &mut rng))
            .collect();
        group.bench_function("oue_d1024_accumulate_10k", |b| {
            b.iter(|| {
                let mut agg = oracle.new_aggregator();
                for r in &reports {
                    agg.accumulate(black_box(r));
                }
                agg.reports()
            })
        });
    }

    // OLH: accumulate is a push; estimation is the expensive side.
    {
        let oracle = OptimizedLocalHashing::new(1 << 20, eps);
        let reports: Vec<_> = (0..n)
            .map(|i| oracle.randomize((i % 1000) as u64, &mut rng))
            .collect();
        let mut agg = oracle.new_aggregator();
        for r in &reports {
            agg.accumulate(r);
        }
        let candidates: Vec<u64> = (0..100).collect();
        group.bench_function("olh_estimate_100_items_over_10k_reports", |b| {
            b.iter(|| agg.estimate_items(black_box(&candidates)))
        });
    }

    // HCMS: accumulate + one FWHT sweep per estimate batch.
    {
        let proto = HcmsProtocol::new(64, 1024, Epsilon::new(4.0).expect("valid eps"), 5);
        let reports: Vec<_> = (0..n)
            .map(|i| proto.randomize((i % 50) as u64, &mut rng))
            .collect();
        group.bench_function("hcms_accumulate_10k", |b| {
            b.iter(|| {
                let mut server = proto.new_server();
                for r in &reports {
                    server.accumulate(black_box(r));
                }
                server.reports()
            })
        });
        let mut server = proto.new_server();
        for r in &reports {
            server.accumulate(r);
        }
        let items: Vec<u64> = (0..50).collect();
        group.bench_function("hcms_estimate_50_items", |b| {
            b.iter(|| server.estimate_items(black_box(&items)))
        });
    }

    // RAPPOR: accumulate + LASSO/OLS decode of 100 candidates.
    {
        let params = RapporParams::small(8).expect("valid params");
        let reports: Vec<_> = (0..2000)
            .map(|i| {
                let mut client = RapporClient::with_random_cohort(params.clone(), &mut rng);
                client.report(format!("url-{}", i % 20).as_bytes(), &mut rng)
            })
            .collect();
        let mut agg = RapporAggregator::new(params.clone());
        for r in &reports {
            agg.accumulate(r);
        }
        let names: Vec<String> = (0..100).map(|i| format!("url-{i}")).collect();
        let candidates: Vec<&[u8]> = names.iter().map(|s| s.as_bytes()).collect();
        group.bench_function("rappor_decode_100_candidates", |b| {
            b.iter(|| agg.decode(black_box(&candidates)))
        });
    }

    group.finish();
}

/// Times `f` with `reps` measured repetitions and returns the median
/// nanoseconds per run. The criterion `Bencher` keeps its samples
/// private, and the raw-scan side of the comparison takes ~1 s per run at
/// full size, so this manual loop is both necessary and adequate.
fn median_ns<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Executes one planned descriptor end to end over the byte path and
/// returns the measured MSE over the tail half of the domain (items at
/// or below the median true count), averaged over `trials` collection
/// rounds. The tail is the right yardstick: the planner ranks on
/// noise-floor σ², which is the variance of a *rare* item's estimate.
fn planned_tail_mse(plan: &Plan, values: &[u64], truth: &[f64], seed: u64, trials: u64) -> f64 {
    let client = WireClient::from_descriptor(&plan.descriptor).expect("planned client builds");
    let mut sorted: Vec<f64> = truth.to_vec();
    sorted.sort_by(f64::total_cmp);
    let median = sorted[sorted.len() / 2];
    let mut mse_sum = 0.0f64;
    for t in 0..trials.max(1) {
        let mut service =
            CollectorService::from_descriptor(&plan.descriptor).expect("planned service builds");
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(t.wrapping_mul(0x9e37_79b9)));
        let mut wire = Vec::new();
        for &v in values {
            client
                .randomize_item(v, &mut rng, &mut wire)
                .expect("frame");
        }
        service.ingest_concat(&wire).expect("ingest");
        let est = service.estimates();
        let (mut sse, mut count) = (0.0f64, 0usize);
        for (e, t) in est.iter().zip(truth) {
            if *t <= median {
                sse += (e - t) * (e - t);
                count += 1;
            }
        }
        mse_sum += sse / count.max(1) as f64;
    }
    mse_sum / trials.max(1) as f64
}

/// Sweeps the planner over the same `(d, ε, budget)` frontier grid as
/// `ldp-sim --scenario plan`, executes each cell's top pick and first
/// clearly-separated runner-up (predicted σ² ≥ 1.1× the winner's) over
/// the byte path, and returns `(cells, cells where the measured error
/// ranking agreed with the predicted one)`.
fn planner_ranking_agreement(planner: &Planner, n: usize, seed: u64) -> (usize, usize) {
    let domains = [64u64, 256, 1024];
    let epsilons = [0.5f64, 1.0, 2.0];
    let profiles: [(Option<u64>, Option<u64>); 3] = [
        (Some(1024 * 1024), None),
        (Some(4 * 1024), None),
        (Some(1024 * 1024), Some(8)),
    ];
    let (mut cells, mut agreed) = (0usize, 0usize);
    let mut ci = 0u64;
    for &d in &domains {
        for &eps in &epsilons {
            for &(mem, rep) in &profiles {
                ci += 1;
                let mut spec = WorkloadSpec::new(d, n as u64, eps);
                if let Some(m) = mem {
                    spec = spec.with_memory_budget(m);
                }
                if let Some(r) = rep {
                    spec = spec.with_report_budget(r);
                }
                let plans = planner.plan(&spec).expect("frontier cell plans");
                assert!(plans.len() >= 2, "frontier cell needs a runner-up");
                let top = &plans[0];
                let next = plans
                    .iter()
                    .skip(1)
                    .find(|p| p.cost.variance >= 1.1 * top.cost.variance)
                    .unwrap_or(&plans[1]);
                let zipf = ZipfGenerator::new(d, 1.1).expect("valid zipf");
                let mut rng = StdRng::seed_from_u64(seed ^ ci);
                let values = zipf.sample_n(n, &mut rng);
                let truth = exact_counts(&values, d);
                let mse_top = planned_tail_mse(top, &values, &truth, seed.wrapping_add(ci), 3);
                let mse_next =
                    planned_tail_mse(next, &values, &truth, seed.wrapping_add(1000 + ci), 3);
                cells += 1;
                agreed += usize::from(mse_top <= mse_next);
            }
        }
    }
    (cells, agreed)
}

/// Median of an already-collected sample vector — companion to
/// `median_ns` for the paired-measurement loops that time several sides
/// of one comparison inside the same rep.
fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Legacy scalar collection over the engine's shard plan (same shard
/// seeds and merge order as `accumulate_sharded`, scalar per-report path
/// inside) — the old collect loop, kept for the old-vs-new comparison.
fn legacy_collect_oue(
    oracle: &OptimizedUnaryEncoding,
    values: &[u64],
    base_seed: u64,
    shards: usize,
) -> usize {
    let (p, q) = oracle.probabilities();
    let d = oracle.domain_size();
    let chunk = values.len().div_ceil(shards);
    let mut agg = oracle.new_aggregator();
    for s in 0..shards {
        let (lo, hi) = (
            (s * chunk).min(values.len()),
            ((s + 1) * chunk).min(values.len()),
        );
        let mut rng = StdRng::seed_from_u64(shard_seed(base_seed, s));
        for &v in &values[lo..hi] {
            agg.accumulate(&legacy_unary_randomize(d, p, q, v, &mut rng));
        }
    }
    agg.reports()
}

/// Old-vs-new at deployment-ish scale: full-domain OLH estimation
/// (raw-report rescan vs cohort count matrix), OUE randomize→accumulate
/// (legacy per-bit scalar vs fused geometric-skip batch), and the whole
/// collect loop (legacy scalar vs batch across the parallel engine).
/// Prints the comparison and records it in `BENCH_aggregate.json`.
fn bench_old_vs_new(_c: &mut Criterion) {
    let smoke = std::env::var("LDP_BENCH_SMOKE").is_ok();
    // Full size matches the acceptance target (n=100k, d=4096); smoke
    // keeps CI in the seconds range while exercising the same code paths.
    let (n, d, estimate_reps) = if smoke {
        (10_000usize, 512u64, 3usize)
    } else {
        (100_000usize, 4096u64, 3usize)
    };
    let cohorts = 1024u32;
    let shards = 16usize;
    let eps = Epsilon::new(1.0).expect("valid eps");
    let cohort_oracle = CohortLocalHashing::optimized(d, cohorts, eps);
    let raw_oracle = LocalHashing::with_g(d, cohort_oracle.g(), eps);
    let mut rng = StdRng::seed_from_u64(11);
    let values: Vec<u64> = (0..n).map(|i| (i as u64).wrapping_mul(31) % d).collect();

    // --- Estimation: raw rescan vs cohort matrix (unchanged since PR 2).
    let mut raw_agg = raw_oracle.new_aggregator();
    let mut cohort_agg = cohort_oracle.new_aggregator();
    for &v in &values {
        raw_agg.accumulate(&raw_oracle.randomize(v, &mut rng));
        cohort_agg.accumulate(&cohort_oracle.randomize(v, &mut rng));
    }
    let raw_estimate_ns = median_ns(estimate_reps, || {
        black_box(raw_agg.estimate());
    });
    let cohort_estimate_ns = median_ns(estimate_reps.max(11), || {
        black_box(cohort_agg.estimate());
    });
    let olh_estimate_speedup = raw_estimate_ns / cohort_estimate_ns;

    // --- Randomization: legacy per-bit scalar vs fused batch, both
    // sequential, on OUE (the unary family is where the issue's per-user
    // O(d) draw cost lived).
    let oue = OptimizedUnaryEncoding::new(d, eps).expect("valid domain");
    let (p, q) = oue.probabilities();
    // Identical, odd rep count on both sides of every comparison:
    // median_ns over an even count returns the slower sample, and
    // asymmetric counts would bias the recorded speedups.
    let rand_reps = 3;
    let oue_scalar_randomize_ns = median_ns(rand_reps, || {
        let mut rng = StdRng::seed_from_u64(7);
        let mut agg = oue.new_aggregator();
        for &v in &values {
            agg.accumulate(&legacy_unary_randomize(d, p, q, v, &mut rng));
        }
        black_box(agg.reports());
    });
    let oue_batch_randomize_ns = median_ns(rand_reps, || {
        let mut rng = StdRng::seed_from_u64(7);
        let mut agg = oue.new_aggregator();
        oue.randomize_accumulate_batch(&values, &mut rng, &mut agg);
        black_box(agg.reports());
    });
    let batch_speedup = oue_scalar_randomize_ns / oue_batch_randomize_ns;

    // THE: the old scalar path materialized d Laplace draws per report
    // and thresholded them; the batch path samples the induced Bernoulli
    // channel with geometric skips — the starkest unary-family win.
    let the = ThresholdHistogramEncoding::new(d, eps).expect("valid domain");
    let theta = the.theta();
    let scale = 2.0 / eps.value();
    let the_scalar_randomize_ns = median_ns(rand_reps, || {
        let mut rng = StdRng::seed_from_u64(7);
        let mut agg = the.new_aggregator();
        for &v in &values {
            agg.accumulate(&legacy_the_randomize(d, scale, theta, v, &mut rng));
        }
        black_box(agg.reports());
    });
    let the_batch_randomize_ns = median_ns(rand_reps, || {
        let mut rng = StdRng::seed_from_u64(7);
        let mut agg = the.new_aggregator();
        the.randomize_accumulate_batch(&values, &mut rng, &mut agg);
        black_box(agg.reports());
    });
    let the_batch_speedup = the_scalar_randomize_ns / the_batch_randomize_ns;

    // --- Industrial mechanisms: the frozen pre-batch-engine scalar
    // paths vs today's fused batch paths, sequential on both sides
    // (algorithmic gains only — thread gains are measured separately).
    //
    // Apple CMS (k=16 rows, m=1024 buckets, ε=2): the legacy path
    // allocates a fresh ±1 row and draws one Bernoulli per coordinate
    // through `dyn RngCore`; the fused path geometric-skips the
    // sign flips (2 + m·q draws) and lands O(1 + m·q) integer counter
    // increments per report.
    let cms = CmsOracle::new(16, 1024, Epsilon::new(2.0).expect("valid eps"), 31, d);
    let cms_values: Vec<u64> = (0..n).map(|i| (i as u64).wrapping_mul(17) % d).collect();
    let apple_cms_scalar_ns = median_ns(rand_reps, || {
        let mut rng = StdRng::seed_from_u64(7);
        let mut server = cms.protocol().new_server();
        for &v in &cms_values {
            server.accumulate(&legacy_cms_randomize(cms.protocol(), v, &mut rng));
        }
        black_box(server.reports());
    });
    let apple_cms_batch_ns = median_ns(rand_reps, || {
        let mut rng = StdRng::seed_from_u64(7);
        let mut agg = cms.new_aggregator();
        cms.randomize_accumulate_batch(&cms_values, &mut rng, &mut agg);
        black_box(agg.reports());
    });
    let apple_batch_speedup = apple_cms_scalar_ns / apple_cms_batch_ns;

    // Microsoft dBitFlip (k=1024 buckets, d=16 bits/device, ε=1): the
    // legacy path runs a partial Fisher–Yates over a freshly allocated
    // O(k) pool per report plus one Bernoulli per assigned bucket; the
    // fused path rejection-samples the d buckets (expected O(d) draws,
    // no pool) and geometric-skips the flips.
    let dbf = DBitFlip::new(1024, 16, eps).expect("valid params");
    let dbf_values: Vec<u64> = (0..n).map(|i| (i as u64).wrapping_mul(13) % 1024).collect();
    let ms_dbitflip_scalar_ns = median_ns(rand_reps, || {
        let mut rng = StdRng::seed_from_u64(7);
        let mut agg = DBitFlip::new_aggregator(&dbf);
        for &v in &dbf_values {
            agg.accumulate(&legacy_dbitflip_randomize(&dbf, v as u32, &mut rng));
        }
        black_box(agg.reports());
    });
    let ms_dbitflip_batch_ns = median_ns(rand_reps, || {
        let mut rng = StdRng::seed_from_u64(7);
        let mut agg = DBitFlip::new_aggregator(&dbf);
        dbf.randomize_accumulate_batch(&dbf_values, &mut rng, &mut agg);
        black_box(agg.reports());
    });
    let microsoft_batch_speedup = ms_dbitflip_scalar_ns / ms_dbitflip_batch_ns;

    // --- Collection: the legacy scalar loop vs the batch path on the
    // parallel engine, with the pure thread contribution isolated.
    // Median of 7: the wire-overhead gate below compares two ~0.5 s
    // measurements whose ratio a single noisy rep can swing by ±25% on a
    // busy host; 7 reps keeps the medians honest without moving the full
    // run out of the minutes range.
    let collect_reps = 7;
    let threads = planned_workers(shards);
    let seq_collect_ns = median_ns(collect_reps, || {
        black_box(legacy_collect_oue(&oue, &values, 5, shards));
    });
    let batch_collect_1w_ns = median_ns(collect_reps, || {
        black_box(accumulate_sharded_sequential(&oue, &values, 5, shards).reports());
    });
    let par_collect_ns = median_ns(collect_reps, || {
        black_box(accumulate_sharded_with_workers(&oue, &values, 5, shards, threads).reports());
    });
    let collect_speedup = seq_collect_ns / par_collect_ns;
    let thread_scaling = batch_collect_1w_ns / par_collect_ns;

    // --- Wire overhead: the same OUE collect as above, fused in-process
    // (`direct_collect_ns`, the direct side) vs collecting the same
    // traffic as bytes through `CollectorService` — frame parse, decode,
    // validation, accumulate. In a deployment the collector never
    // randomizes: framing happens on the client fleet, so the service's
    // cost of a collection round is the ingest side, and `wire_overhead`
    // gates exactly that (the service must not be slower than the fused
    // in-process engine by more than 1.3×). The client-side framing cost
    // and the resulting end-to-end ratio are recorded alongside
    // (`wire_client_frame_ns`, `wire_e2e_overhead`, gated < 1.35×) —
    // both ends of the byte path are fused now: the client samples set
    // bits straight into the outgoing frame buffer
    // (`FusedUnaryMechanism::try_randomize_frames`) and the service adds
    // payload bytes straight into the counters, eight frames at a time
    // (`FoAggregator::try_accumulate_packed_bits_batch`), so the
    // remaining tax over the in-process engine is one packed write plus
    // one packed read of each report's bits.
    let wire_desc = ProtocolDescriptor::builder(MechanismKind::OptimizedUnary)
        .domain_size(d)
        .epsilon(1.0)
        .build()
        .expect("valid descriptor");
    let wire_client = WireClient::from_descriptor(&wire_desc).expect("client builds");
    // All three sides (fused direct collect, client framing, service
    // ingest) are timed back-to-back inside each rep, and the overhead
    // ratios are medians of *per-rep* ratios. This is a shared 1-core
    // container whose throughput drifts by double-digit percentages
    // over minutes; sides measured in separate median_ns blocks put
    // that drift straight into the ratio, while all three sides of one
    // rep see the same machine.
    let buffers = wire_client
        .frames_sharded(&values, 5, shards)
        .expect("framing succeeds");
    // The framing side reuses one set of per-shard buffers across reps
    // (`frames_sharded_into`), as a client fleet does round over round —
    // a fresh 50 MB `frames_sharded` allocation per rep would charge the
    // client ~12k mmap page faults the steady state never pays.
    let mut frame_bufs = buffers.clone();
    let mut direct_samples = Vec::with_capacity(collect_reps);
    let mut frame_samples = Vec::with_capacity(collect_reps);
    let mut ingest_samples = Vec::with_capacity(collect_reps);
    let mut service_ratio_samples = Vec::with_capacity(collect_reps);
    let mut e2e_ratio_samples = Vec::with_capacity(collect_reps);
    for _ in 0..collect_reps {
        let start = Instant::now();
        black_box(accumulate_sharded_sequential(&oue, &values, 5, shards).reports());
        let direct = start.elapsed().as_nanos() as f64;
        let start = Instant::now();
        wire_client
            .frames_sharded_into(&values, 5, shards, &mut frame_bufs)
            .expect("framing succeeds");
        black_box(frame_bufs.len());
        let frame = start.elapsed().as_nanos() as f64;
        let start = Instant::now();
        let mut service = CollectorService::from_descriptor(&wire_desc).expect("service builds");
        for buf in &buffers {
            service.ingest_concat(buf).expect("frames ingest");
        }
        black_box(service.reports());
        let ingest = start.elapsed().as_nanos() as f64;
        direct_samples.push(direct);
        frame_samples.push(frame);
        ingest_samples.push(ingest);
        service_ratio_samples.push(ingest / direct);
        e2e_ratio_samples.push((frame + ingest) / direct);
    }
    let direct_collect_ns = median(direct_samples);
    let wire_client_frame_ns = median(frame_samples);
    let wire_collect_ns = median(ingest_samples);
    let wire_overhead = median(service_ratio_samples);
    let wire_e2e_overhead = median(e2e_ratio_samples);

    // --- Concurrent pipeline: the same pre-framed traffic pushed through
    // the bounded-queue collector fleet — submit, worker drain, ingest
    // into per-shard services, shard-order merge at finish. Includes the
    // pipeline's whole lifecycle (thread spawn to join) so the number is
    // the honest deployment cost of a collection round. On this host the
    // value of record is the absolute ingest cost plus the queue
    // high-water mark; the concurrency win itself is algorithmic (the
    // shard-order merge is bit-identical at any worker count) and
    // materializes on multi-core collectors.
    let pipeline_config = PipelineConfig {
        shards,
        workers: threads,
        queue_depth: 64,
        policy: BackpressurePolicy::Block,
    };
    let pipeline_batches: Vec<(usize, Vec<u8>)> = buffers
        .iter()
        .enumerate()
        .flat_map(|(shard, buf)| {
            split_frames(buf, 4)
                .expect("frame split")
                .into_iter()
                .map(move |batch| (shard, batch))
        })
        .collect();
    let mut pipeline_queue_hwm = 0usize;
    let pipeline_ingest_ns = median_ns(collect_reps, || {
        let pipeline =
            CollectorPipeline::new(&wire_desc, pipeline_config).expect("pipeline builds");
        for (shard, batch) in &pipeline_batches {
            pipeline.submit(*shard, batch.clone()).expect("submit");
        }
        let (service, stats) = pipeline.finish().expect("pipeline finish");
        pipeline_queue_hwm = pipeline_queue_hwm.max(stats.queue_hwm());
        black_box(service.reports());
    });

    // --- Durable snapshots: one checkpoint/restore cycle of the loaded
    // OLH-C aggregator (the C×g cohort count matrix, the biggest state in
    // the workspace at these parameters), plus the BLOB size — the cost
    // story for the merge-tree layer, recorded run over run.
    let snapshot_bytes = ldp_core::snapshot::snapshot_vec(&cohort_agg).len();
    let snapshot_roundtrip_ns = median_ns(collect_reps, || {
        let blob = ldp_core::snapshot::snapshot_vec(&cohort_agg);
        let mut fresh = cohort_oracle.new_aggregator();
        ldp_core::snapshot::restore_from(&mut fresh, &blob).expect("snapshot restores");
        black_box(fresh.reports());
    });

    // --- Sliding window ring: steady-state advance (one collection
    // round's pre-framed traffic into a fresh bucket, retiring the
    // expired window from the running total by exact subtraction) and a
    // full decode of the sliding total. OLH-C, the mechanism the
    // `ldp-sim --scenario windows` deployment runs on.
    let win_windows = 8usize;
    let n_win = n / 10;
    let win_desc = ProtocolDescriptor::builder(MechanismKind::CohortLocalHashing)
        .domain_size(d)
        .epsilon(1.0)
        .cohorts(64)
        .build()
        .expect("valid descriptor");
    let win_client = WireClient::from_descriptor(&win_desc).expect("client builds");
    let win_buf = win_client
        .frames_sharded(&values[..n_win], 13, 1)
        .expect("framing succeeds")
        .remove(0);
    let mut ring =
        WindowRing::new(&win_desc, WindowConfig::new(1, win_windows)).expect("ring builds");
    let mut next_bucket = 0u64;
    for _ in 0..win_windows {
        ring.ingest_concat(next_bucket, &win_buf)
            .expect("ring prefill");
        next_bucket += 1;
    }
    let window_advance_ns = median_ns(collect_reps, || {
        ring.ingest_concat(next_bucket, &win_buf)
            .expect("ring advances");
        next_bucket += 1;
        black_box(ring.reports());
    });
    assert_eq!(
        ring.stats().retired_rebuild,
        0,
        "OLH-C retirement must stay on the subtract path"
    );
    let window_estimate_ns = median_ns(estimate_reps.max(11), || {
        black_box(ring.estimates());
    });

    // --- Mechanism planner: full plan latency over the workspace cost
    // book, and predicted-vs-measured error ranking agreement over the
    // same (d, ε, budget) frontier grid `ldp-sim --scenario plan`
    // sweeps. Agreement below 1.0 is expected: two formulas are
    // documented approximations (HR ignores multinomial row variation;
    // OLH-C charges the worst-case collision mass), and the frontier
    // harness exists to keep that gap measured rather than assumed.
    let planner = workspace_planner();
    let plan_spec = WorkloadSpec::new(d, n as u64, 1.0)
        .with_memory_budget(64 * 1024)
        .with_report_budget(16);
    let planner_plan_ns = median_ns(rand_reps.max(11), || {
        black_box(planner.plan(black_box(&plan_spec)).expect("spec plans"));
    });
    let planner_n = if smoke { 4_000usize } else { 30_000 };
    let (planner_cells, planner_agreed) = planner_ranking_agreement(&planner, planner_n, 2024);
    let planner_agreement = planner_agreed as f64 / planner_cells.max(1) as f64;

    // --- Decode kernels: each new kernel vs its frozen baseline, same
    // odd rep count on both sides of every comparison.

    // Tiled radix-4 FWHT vs the frozen radix-2 reference butterfly, at a
    // transform size whose working set spills L1 (where the tiling
    // matters). The per-rep clone is identical on both sides.
    let fwht_m = if smoke { 1usize << 14 } else { 1usize << 17 };
    let fwht_reps = 11;
    let fwht_data: Vec<f64> = (0..fwht_m)
        .map(|i| {
            let h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            (h >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect();
    let fwht_reference_ns = median_ns(fwht_reps, || {
        let mut buf = fwht_data.clone();
        ldp_sketch::fwht_reference(&mut buf);
        black_box(&buf);
    });
    let fwht_tiled_ns = median_ns(fwht_reps, || {
        let mut buf = fwht_data.clone();
        ldp_sketch::fwht(&mut buf);
        black_box(&buf);
    });
    let fwht_tiled_speedup = fwht_reference_ns / fwht_tiled_ns;

    // HCMS: answering a batch of point queries against a frozen sketch.
    // The legacy path re-ran the full k-row transform sweep per query;
    // the decode kernel inverts the spectrum once and answers each query
    // with k hash-and-gather probes. Estimates are bit-identical
    // (asserted below) because the tiled FWHT matches the reference
    // butterfly bit-for-bit.
    let (hcms_k, hcms_m, hcms_q) = if smoke {
        (8usize, 512usize, 16u64)
    } else {
        (16, 2048, 32)
    };
    let hcms_proto = HcmsProtocol::new(hcms_k, hcms_m, Epsilon::new(4.0).expect("valid eps"), 5);
    let mut hcms_server = hcms_proto.new_server();
    {
        let mut hrng = StdRng::seed_from_u64(17);
        for i in 0..n / 10 {
            hcms_server.accumulate(&hcms_proto.randomize((i % 64) as u64, &mut hrng));
        }
    }
    let hcms_queries: Vec<u64> = (0..hcms_q).collect();
    let hcms_legacy_decode_ns = median_ns(rand_reps, || {
        let estimates: Vec<f64> = hcms_queries
            .iter()
            .map(|&v| {
                legacy_hcms_estimate(
                    &hcms_proto,
                    hcms_server.spectrum(),
                    hcms_server.debias_constant(),
                    hcms_server.reports(),
                    v,
                )
            })
            .collect();
        black_box(estimates);
    });
    let hcms_cached_decode_ns = median_ns(rand_reps, || {
        black_box(hcms_server.estimate_items(&hcms_queries));
    });
    let hcms_decode_speedup = hcms_legacy_decode_ns / hcms_cached_decode_ns;
    for (&v, &fast) in hcms_queries
        .iter()
        .zip(&hcms_server.estimate_items(&hcms_queries))
    {
        let slow = legacy_hcms_estimate(
            &hcms_proto,
            hcms_server.spectrum(),
            hcms_server.debias_constant(),
            hcms_server.reports(),
            v,
        );
        assert_eq!(
            slow.to_bits(),
            fast.to_bits(),
            "HCMS decode diverged from the frozen baseline at value {v}"
        );
    }

    // SFP: candidate-frontier decode vs the frozen exhaustive oracle on
    // a seeded heavy-hitter workload (both must discover the same
    // words; the frontier only prunes fragments below the noise floor).
    let sfp_n = if smoke { 4_000usize } else { 20_000 };
    let sfp = SfpDiscovery::new(
        SfpConfig::simulation(Epsilon::new(6.0).expect("valid eps")),
        99,
    )
    .expect("valid config");
    let mut sfp_collectors = sfp.new_collectors();
    {
        let mut srng = StdRng::seed_from_u64(7);
        let population: Vec<&[u8]> = (0..sfp_n)
            .map(|i| -> &[u8] {
                match i % 10 {
                    0..=5 => b"selfie",
                    6..=8 => b"emojis",
                    _ => b"xq1-z0",
                }
            })
            .collect();
        sfp.collect(&population, &mut srng, &mut sfp_collectors);
    }
    let sfp_exhaustive_decode_ns = median_ns(rand_reps, || {
        black_box(sfp.decode_exhaustive(&sfp_collectors));
    });
    let sfp_candidate_decode_ns = median_ns(rand_reps, || {
        black_box(sfp.decode(&sfp_collectors));
    });
    let sfp_decode_speedup = sfp_exhaustive_decode_ns / sfp_candidate_decode_ns;

    // RAPPOR: sparse active-set LASSO decode vs the frozen dense
    // pipeline, over a candidate list dominated by absent values (the
    // deployment shape: the known dictionary is much larger than the
    // heavy-hitter set, and the sparse solver skips converged zeros).
    let (n_rappor, n_rappor_cand) = if smoke {
        (2_000usize, 100usize)
    } else {
        (10_000, 400)
    };
    let rappor_params = RapporParams::new(64, 2, 8, 0.25, 0.35, 0.65).expect("valid params");
    let mut rappor_agg = RapporAggregator::new(rappor_params.clone());
    {
        let mut rrng = StdRng::seed_from_u64(23);
        for i in 0..n_rappor {
            let word = format!("url-{}", i % 20);
            let mut client = RapporClient::with_random_cohort(rappor_params.clone(), &mut rrng);
            rappor_agg.accumulate(&client.report(word.as_bytes(), &mut rrng));
        }
    }
    let rappor_names: Vec<String> = (0..n_rappor_cand).map(|i| format!("url-{i}")).collect();
    let rappor_cands: Vec<&[u8]> = rappor_names.iter().map(|s| s.as_bytes()).collect();
    let rappor_dense_lasso_ns = median_ns(rand_reps, || {
        black_box(legacy_rappor_decode(&rappor_agg, &rappor_cands));
    });
    let rappor_sparse_lasso_ns = median_ns(rand_reps, || {
        black_box(rappor_agg.decode(&rappor_cands));
    });
    let rappor_lasso_speedup = rappor_dense_lasso_ns / rappor_sparse_lasso_ns;

    // SHE: the batched inverse-CDF Laplace randomize→accumulate (one
    // uniform block + branchless transform per report, shared scratch)
    // vs the frozen per-draw loop (fresh Vec per report, one libm-ln
    // `sample_laplace` per coordinate).
    let (she_d, n_she) = if smoke {
        (256u64, 2_000usize)
    } else {
        (1024, 10_000)
    };
    let she = SummationHistogramEncoding::new(she_d, eps).expect("valid domain");
    let she_scale = she.noise_scale();
    let she_values: Vec<u64> = (0..n_she)
        .map(|i| (i as u64).wrapping_mul(7) % she_d)
        .collect();
    let she_legacy_randomize_ns = median_ns(rand_reps, || {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sums = vec![0.0; she_d as usize];
        legacy_she_randomize_accumulate(she_d, she_scale, &she_values, &mut rng, &mut sums);
        black_box(&sums);
    });
    let she_batched_randomize_ns = median_ns(rand_reps, || {
        let mut rng = StdRng::seed_from_u64(7);
        let mut agg = she.new_aggregator();
        she.randomize_accumulate_batch(&she_values, &mut rng, &mut agg);
        black_box(agg.reports());
    });
    let she_randomize_speedup = she_legacy_randomize_ns / she_batched_randomize_ns;

    println!(
        "olh_full_domain_estimate/raw_n{n}_d{d}: {:.2} ms",
        raw_estimate_ns / 1e6
    );
    println!(
        "olh_full_domain_estimate/cohort_C{cohorts}_d{d}: {:.3} ms  ({olh_estimate_speedup:.1}x speedup)",
        cohort_estimate_ns / 1e6
    );
    println!(
        "oue_randomize_accumulate/scalar_n{n}_d{d}: {:.2} ms, fused_batch: {:.2} ms  ({batch_speedup:.1}x speedup)",
        oue_scalar_randomize_ns / 1e6,
        oue_batch_randomize_ns / 1e6
    );
    println!(
        "the_randomize_accumulate/scalar_n{n}_d{d}: {:.2} ms, fused_batch: {:.2} ms  ({the_batch_speedup:.1}x speedup)",
        the_scalar_randomize_ns / 1e6,
        the_batch_randomize_ns / 1e6
    );
    println!(
        "apple_cms_randomize_accumulate/legacy_n{n}_m1024: {:.2} ms, fused_batch: {:.2} ms  ({apple_batch_speedup:.1}x speedup)",
        apple_cms_scalar_ns / 1e6,
        apple_cms_batch_ns / 1e6
    );
    println!(
        "microsoft_dbitflip_randomize_accumulate/legacy_n{n}_k1024_d16: {:.2} ms, fused_batch: {:.2} ms  ({microsoft_batch_speedup:.1}x speedup)",
        ms_dbitflip_scalar_ns / 1e6,
        ms_dbitflip_batch_ns / 1e6
    );
    println!(
        "oue_collect/legacy_scalar_n{n}: {:.2} ms, batch_1w: {:.2} ms, batch_parallel({threads} workers): {:.2} ms  ({collect_speedup:.1}x total, {thread_scaling:.2}x from threads)",
        seq_collect_ns / 1e6,
        batch_collect_1w_ns / 1e6,
        par_collect_ns / 1e6
    );
    println!(
        "oue_collect/fused_direct_n{n}: {:.2} ms, bytes_through_service: {:.2} ms  ({wire_overhead:.2}x service-side wire overhead; client framing {:.2} ms, {wire_e2e_overhead:.2}x end-to-end)",
        direct_collect_ns / 1e6,
        wire_collect_ns / 1e6,
        wire_client_frame_ns / 1e6
    );
    println!(
        "oue_collect/pipeline_{threads}w_q64: {:.2} ms (queue hwm {pipeline_queue_hwm} batches)",
        pipeline_ingest_ns / 1e6
    );
    println!(
        "olhc_snapshot/roundtrip_C{cohorts}_g{}: {:.3} ms, blob {snapshot_bytes} bytes",
        cohort_oracle.g(),
        snapshot_roundtrip_ns / 1e6
    );
    println!(
        "window_ring/advance_{n_win}f_w{win_windows}: {:.2} ms (subtractive retirement), estimate: {:.3} ms",
        window_advance_ns / 1e6,
        window_estimate_ns / 1e6
    );
    println!(
        "planner/plan_d{d}_budgeted: {:.1} µs, ranking_agreement: {planner_agreed}/{planner_cells} ({:.0}%) over the frontier grid at n={planner_n}",
        planner_plan_ns / 1e3,
        planner_agreement * 100.0
    );
    println!(
        "fwht/reference_m{fwht_m}: {:.3} ms, tiled: {:.3} ms  ({fwht_tiled_speedup:.2}x speedup, bit-identical)",
        fwht_reference_ns / 1e6,
        fwht_tiled_ns / 1e6
    );
    println!(
        "hcms_decode/legacy_per_query_k{hcms_k}_m{hcms_m}_q{hcms_q}: {:.2} ms, decode_once: {:.3} ms  ({hcms_decode_speedup:.1}x speedup, bit-identical)",
        hcms_legacy_decode_ns / 1e6,
        hcms_cached_decode_ns / 1e6
    );
    println!(
        "sfp_decode/exhaustive_n{sfp_n}: {:.2} ms, candidate_frontier: {:.2} ms  ({sfp_decode_speedup:.1}x speedup, same word set)",
        sfp_exhaustive_decode_ns / 1e6,
        sfp_candidate_decode_ns / 1e6
    );
    println!(
        "rappor_decode/dense_lasso_{n_rappor_cand}cand: {:.2} ms, sparse_active_set: {:.2} ms  ({rappor_lasso_speedup:.1}x speedup)",
        rappor_dense_lasso_ns / 1e6,
        rappor_sparse_lasso_ns / 1e6
    );
    println!(
        "she_randomize_accumulate/legacy_per_draw_n{n_she}_d{she_d}: {:.2} ms, batched_laplace: {:.2} ms  ({she_randomize_speedup:.1}x speedup)",
        she_legacy_randomize_ns / 1e6,
        she_batched_randomize_ns / 1e6
    );

    let json = format!(
        "{{\n  \"bench\": \"aggregate_throughput\",\n  \"mode\": \"{}\",\n  \"n\": {n},\n  \"d\": {d},\n  \"g\": {},\n  \"cohorts\": {cohorts},\n  \"shards\": {shards},\n  \"threads\": {threads},\n  \"oue_scalar_randomize_ns\": {oue_scalar_randomize_ns:.0},\n  \"oue_batch_randomize_ns\": {oue_batch_randomize_ns:.0},\n  \"batch_speedup\": {batch_speedup:.2},\n  \"the_scalar_randomize_ns\": {the_scalar_randomize_ns:.0},\n  \"the_batch_randomize_ns\": {the_batch_randomize_ns:.0},\n  \"the_batch_speedup\": {the_batch_speedup:.2},\n  \"apple_cms_scalar_ns\": {apple_cms_scalar_ns:.0},\n  \"apple_cms_batch_ns\": {apple_cms_batch_ns:.0},\n  \"apple_batch_speedup\": {apple_batch_speedup:.2},\n  \"ms_dbitflip_scalar_ns\": {ms_dbitflip_scalar_ns:.0},\n  \"ms_dbitflip_batch_ns\": {ms_dbitflip_batch_ns:.0},\n  \"microsoft_batch_speedup\": {microsoft_batch_speedup:.2},\n  \"seq_collect_ns\": {seq_collect_ns:.0},\n  \"batch_collect_1w_ns\": {batch_collect_1w_ns:.0},\n  \"par_collect_ns\": {par_collect_ns:.0},\n  \"collect_speedup\": {collect_speedup:.2},\n  \"thread_scaling\": {thread_scaling:.2},\n  \"direct_collect_ns\": {direct_collect_ns:.0},\n  \"wire_collect_ns\": {wire_collect_ns:.0},\n  \"wire_client_frame_ns\": {wire_client_frame_ns:.0},\n  \"wire_overhead\": {wire_overhead:.3},\n  \"wire_e2e_overhead\": {wire_e2e_overhead:.3},\n  \"pipeline_ingest_ns\": {pipeline_ingest_ns:.0},\n  \"pipeline_queue_hwm\": {pipeline_queue_hwm},\n  \"snapshot_roundtrip_ns\": {snapshot_roundtrip_ns:.0},\n  \"snapshot_bytes\": {snapshot_bytes},\n  \"window_advance_ns\": {window_advance_ns:.0},\n  \"window_estimate_ns\": {window_estimate_ns:.0},\n  \"planner\": {{\n    \"plan_ns\": {planner_plan_ns:.0},\n    \"cells\": {planner_cells},\n    \"ranking_agreement\": {planner_agreement:.3}\n  }},\n  \"decode\": {{\n    \"raw_full_estimate_ns\": {raw_estimate_ns:.0},\n    \"cohort_full_estimate_ns\": {cohort_estimate_ns:.0},\n    \"olh_estimate_speedup\": {olh_estimate_speedup:.2},\n    \"fwht_m\": {fwht_m},\n    \"fwht_reference_ns\": {fwht_reference_ns:.0},\n    \"fwht_tiled_ns\": {fwht_tiled_ns:.0},\n    \"fwht_tiled_speedup\": {fwht_tiled_speedup:.2},\n    \"hcms_legacy_decode_ns\": {hcms_legacy_decode_ns:.0},\n    \"hcms_cached_decode_ns\": {hcms_cached_decode_ns:.0},\n    \"hcms_decode_speedup\": {hcms_decode_speedup:.2},\n    \"sfp_exhaustive_decode_ns\": {sfp_exhaustive_decode_ns:.0},\n    \"sfp_candidate_decode_ns\": {sfp_candidate_decode_ns:.0},\n    \"sfp_decode_speedup\": {sfp_decode_speedup:.2},\n    \"rappor_dense_lasso_ns\": {rappor_dense_lasso_ns:.0},\n    \"rappor_sparse_lasso_ns\": {rappor_sparse_lasso_ns:.0},\n    \"rappor_lasso_speedup\": {rappor_lasso_speedup:.2},\n    \"she_legacy_randomize_ns\": {she_legacy_randomize_ns:.0},\n    \"she_batched_randomize_ns\": {she_batched_randomize_ns:.0},\n    \"she_randomize_speedup\": {she_randomize_speedup:.2}\n  }}\n}}\n",
        if smoke { "smoke" } else { "full" },
        cohort_oracle.g(),
    );
    let out = std::env::var("LDP_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_aggregate.json").to_string()
    });
    std::fs::write(&out, json).expect("write BENCH_aggregate.json");
    println!("wrote {out}");
}

criterion_group!(benches, bench_aggregate, bench_old_vs_new);
criterion_main!(benches);
