//! Server-side aggregation and estimation cost — accumulate must be O(1)
//! amortized per report, estimation linear with small constants.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ldp_apple::hcms::HcmsProtocol;
use ldp_core::fo::{FoAggregator, FrequencyOracle, OptimizedLocalHashing, OptimizedUnaryEncoding};
use ldp_core::Epsilon;
use ldp_rappor::{RapporAggregator, RapporClient, RapporParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_aggregate(c: &mut Criterion) {
    let eps = Epsilon::new(1.0).expect("valid eps");
    let mut rng = StdRng::seed_from_u64(2);
    let n = 10_000usize;

    let mut group = c.benchmark_group("server_aggregate");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(n as u64));

    // OUE: bit-packed accumulate over d=1024.
    {
        let oracle = OptimizedUnaryEncoding::new(1024, eps).expect("valid domain");
        let reports: Vec<_> = (0..n)
            .map(|i| oracle.randomize((i % 1024) as u64, &mut rng))
            .collect();
        group.bench_function("oue_d1024_accumulate_10k", |b| {
            b.iter(|| {
                let mut agg = oracle.new_aggregator();
                for r in &reports {
                    agg.accumulate(black_box(r));
                }
                agg.reports()
            })
        });
    }

    // OLH: accumulate is a push; estimation is the expensive side.
    {
        let oracle = OptimizedLocalHashing::new(1 << 20, eps);
        let reports: Vec<_> = (0..n)
            .map(|i| oracle.randomize((i % 1000) as u64, &mut rng))
            .collect();
        let mut agg = oracle.new_aggregator();
        for r in &reports {
            agg.accumulate(r);
        }
        let candidates: Vec<u64> = (0..100).collect();
        group.bench_function("olh_estimate_100_items_over_10k_reports", |b| {
            b.iter(|| agg.estimate_items(black_box(&candidates)))
        });
    }

    // HCMS: accumulate + one FWHT sweep per estimate batch.
    {
        let proto = HcmsProtocol::new(64, 1024, Epsilon::new(4.0).expect("valid eps"), 5);
        let reports: Vec<_> = (0..n)
            .map(|i| proto.randomize((i % 50) as u64, &mut rng))
            .collect();
        group.bench_function("hcms_accumulate_10k", |b| {
            b.iter(|| {
                let mut server = proto.new_server();
                for r in &reports {
                    server.accumulate(black_box(r));
                }
                server.reports()
            })
        });
        let mut server = proto.new_server();
        for r in &reports {
            server.accumulate(r);
        }
        let items: Vec<u64> = (0..50).collect();
        group.bench_function("hcms_estimate_50_items", |b| {
            b.iter(|| server.estimate_items(black_box(&items)))
        });
    }

    // RAPPOR: accumulate + LASSO/OLS decode of 100 candidates.
    {
        let params = RapporParams::small(8).expect("valid params");
        let reports: Vec<_> = (0..2000)
            .map(|i| {
                let mut client = RapporClient::with_random_cohort(params.clone(), &mut rng);
                client.report(format!("url-{}", i % 20).as_bytes(), &mut rng)
            })
            .collect();
        let mut agg = RapporAggregator::new(params.clone());
        for r in &reports {
            agg.accumulate(r);
        }
        let names: Vec<String> = (0..100).map(|i| format!("url-{i}")).collect();
        let candidates: Vec<&[u8]> = names.iter().map(|s| s.as_bytes()).collect();
        group.bench_function("rappor_decode_100_candidates", |b| {
            b.iter(|| agg.decode(black_box(&candidates)))
        });
    }

    group.finish();
}

criterion_group!(benches, bench_aggregate);
criterion_main!(benches);
