//! Server-side aggregation and estimation cost — accumulate must be O(1)
//! amortized per report, estimation linear with small constants.
//!
//! Besides the criterion groups, this bench runs the **old-vs-new
//! full-domain OLH comparison** (raw-report rescan vs cohort count
//! matrix, plus sequential vs sharded-parallel collection) and emits the
//! measurements to `BENCH_aggregate.json` at the workspace root, so the
//! perf trajectory is recorded run over run. Set `LDP_BENCH_SMOKE=1` for
//! a seconds-scale CI smoke configuration, and `LDP_BENCH_OUT=<path>` to
//! redirect the JSON.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ldp_apple::hcms::HcmsProtocol;
use ldp_core::fo::{
    CohortLocalHashing, FoAggregator, FrequencyOracle, LocalHashing, OptimizedLocalHashing,
    OptimizedUnaryEncoding,
};
use ldp_core::Epsilon;
use ldp_rappor::{RapporAggregator, RapporClient, RapporParams};
use ldp_workloads::parallel::{accumulate_sharded, accumulate_sharded_sequential};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn bench_aggregate(c: &mut Criterion) {
    let eps = Epsilon::new(1.0).expect("valid eps");
    let mut rng = StdRng::seed_from_u64(2);
    let n = 10_000usize;

    let mut group = c.benchmark_group("server_aggregate");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(n as u64));

    // OUE: bit-packed accumulate over d=1024.
    {
        let oracle = OptimizedUnaryEncoding::new(1024, eps).expect("valid domain");
        let reports: Vec<_> = (0..n)
            .map(|i| oracle.randomize((i % 1024) as u64, &mut rng))
            .collect();
        group.bench_function("oue_d1024_accumulate_10k", |b| {
            b.iter(|| {
                let mut agg = oracle.new_aggregator();
                for r in &reports {
                    agg.accumulate(black_box(r));
                }
                agg.reports()
            })
        });
    }

    // OLH: accumulate is a push; estimation is the expensive side.
    {
        let oracle = OptimizedLocalHashing::new(1 << 20, eps);
        let reports: Vec<_> = (0..n)
            .map(|i| oracle.randomize((i % 1000) as u64, &mut rng))
            .collect();
        let mut agg = oracle.new_aggregator();
        for r in &reports {
            agg.accumulate(r);
        }
        let candidates: Vec<u64> = (0..100).collect();
        group.bench_function("olh_estimate_100_items_over_10k_reports", |b| {
            b.iter(|| agg.estimate_items(black_box(&candidates)))
        });
    }

    // HCMS: accumulate + one FWHT sweep per estimate batch.
    {
        let proto = HcmsProtocol::new(64, 1024, Epsilon::new(4.0).expect("valid eps"), 5);
        let reports: Vec<_> = (0..n)
            .map(|i| proto.randomize((i % 50) as u64, &mut rng))
            .collect();
        group.bench_function("hcms_accumulate_10k", |b| {
            b.iter(|| {
                let mut server = proto.new_server();
                for r in &reports {
                    server.accumulate(black_box(r));
                }
                server.reports()
            })
        });
        let mut server = proto.new_server();
        for r in &reports {
            server.accumulate(r);
        }
        let items: Vec<u64> = (0..50).collect();
        group.bench_function("hcms_estimate_50_items", |b| {
            b.iter(|| server.estimate_items(black_box(&items)))
        });
    }

    // RAPPOR: accumulate + LASSO/OLS decode of 100 candidates.
    {
        let params = RapporParams::small(8).expect("valid params");
        let reports: Vec<_> = (0..2000)
            .map(|i| {
                let mut client = RapporClient::with_random_cohort(params.clone(), &mut rng);
                client.report(format!("url-{}", i % 20).as_bytes(), &mut rng)
            })
            .collect();
        let mut agg = RapporAggregator::new(params.clone());
        for r in &reports {
            agg.accumulate(r);
        }
        let names: Vec<String> = (0..100).map(|i| format!("url-{i}")).collect();
        let candidates: Vec<&[u8]> = names.iter().map(|s| s.as_bytes()).collect();
        group.bench_function("rappor_decode_100_candidates", |b| {
            b.iter(|| agg.decode(black_box(&candidates)))
        });
    }

    group.finish();
}

/// Times `f` with `reps` measured repetitions and returns the median
/// nanoseconds per run. The criterion `Bencher` keeps its samples
/// private, and the raw-scan side of the comparison takes ~1 s per run at
/// full size, so this manual loop is both necessary and adequate.
fn median_ns<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Old-vs-new full-domain OLH aggregation at deployment-ish scale:
/// raw-report rescan (`O(n·d)`) against the cohort count matrix
/// (`O(C·d)`), plus sequential vs sharded-parallel collection. Prints the
/// comparison and records it in `BENCH_aggregate.json`.
fn bench_olh_old_vs_new(_c: &mut Criterion) {
    let smoke = std::env::var("LDP_BENCH_SMOKE").is_ok();
    // Full size matches the acceptance target (n=100k, d=4096); smoke
    // keeps CI in the seconds range while exercising the same code paths.
    let (n, d, estimate_reps) = if smoke {
        (10_000usize, 512u64, 3usize)
    } else {
        (100_000usize, 4096u64, 3usize)
    };
    let cohorts = 1024u32;
    let shards = 16usize;
    let eps = Epsilon::new(1.0).expect("valid eps");
    let cohort_oracle = CohortLocalHashing::optimized(d, cohorts, eps);
    let raw_oracle = LocalHashing::with_g(d, cohort_oracle.g(), eps);
    let mut rng = StdRng::seed_from_u64(11);
    let values: Vec<u64> = (0..n).map(|i| (i as u64).wrapping_mul(31) % d).collect();

    // Accumulate both aggregators once; the comparison is estimation cost.
    let mut raw_agg = raw_oracle.new_aggregator();
    let mut cohort_agg = cohort_oracle.new_aggregator();
    for &v in &values {
        raw_agg.accumulate(&raw_oracle.randomize(v, &mut rng));
        cohort_agg.accumulate(&cohort_oracle.randomize(v, &mut rng));
    }

    let raw_estimate_ns = median_ns(estimate_reps, || {
        black_box(raw_agg.estimate());
    });
    let cohort_estimate_ns = median_ns(estimate_reps.max(10), || {
        black_box(cohort_agg.estimate());
    });
    let estimate_speedup = raw_estimate_ns / cohort_estimate_ns;

    // Collection: sequential reference vs the sharded-parallel engine
    // (same shard plan, so identical output; the delta is thread fan-out).
    let collect_reps = if smoke { 2 } else { 3 };
    let seq_collect_ns = median_ns(collect_reps, || {
        black_box(accumulate_sharded_sequential(&cohort_oracle, &values, 5, shards).reports());
    });
    let par_collect_ns = median_ns(collect_reps, || {
        black_box(accumulate_sharded(&cohort_oracle, &values, 5, shards).reports());
    });
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());

    println!(
        "olh_full_domain_estimate/raw_n{n}_d{d}: {:.2} ms",
        raw_estimate_ns / 1e6
    );
    println!(
        "olh_full_domain_estimate/cohort_C{cohorts}_d{d}: {:.3} ms  ({estimate_speedup:.1}x speedup)",
        cohort_estimate_ns / 1e6
    );
    println!(
        "olh_collect/sequential_n{n}: {:.2} ms, sharded_parallel({threads} threads): {:.2} ms",
        seq_collect_ns / 1e6,
        par_collect_ns / 1e6
    );

    let json = format!(
        "{{\n  \"bench\": \"aggregate_throughput\",\n  \"mode\": \"{}\",\n  \"n\": {n},\n  \"d\": {d},\n  \"g\": {},\n  \"cohorts\": {cohorts},\n  \"shards\": {shards},\n  \"threads\": {threads},\n  \"raw_full_estimate_ns\": {raw_estimate_ns:.0},\n  \"cohort_full_estimate_ns\": {cohort_estimate_ns:.0},\n  \"estimate_speedup\": {estimate_speedup:.2},\n  \"seq_collect_ns\": {seq_collect_ns:.0},\n  \"par_collect_ns\": {par_collect_ns:.0},\n  \"collect_speedup\": {:.2}\n}}\n",
        if smoke { "smoke" } else { "full" },
        cohort_oracle.g(),
        seq_collect_ns / par_collect_ns,
    );
    let out = std::env::var("LDP_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_aggregate.json").to_string()
    });
    std::fs::write(&out, json).expect("write BENCH_aggregate.json");
    println!("wrote {out}");
}

criterion_group!(benches, bench_aggregate, bench_olh_old_vs_new);
criterion_main!(benches);
