//! Substrate microbenchmarks: hashing, bit vectors, sketches, FWHT, and
//! the regression used by RAPPOR decoding.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ldp_sketch::hash::{hash_bytes64, mix64, HashFamily, PairwiseHash};
use ldp_sketch::linalg::{lasso, least_squares, Matrix};
use ldp_sketch::{fwht, BitVec, BloomFilter, CountMeanSketch, CountMinSketch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_substrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    group.bench_function("mix64", |b| b.iter(|| mix64(black_box(0xdead_beef))));

    group.bench_function("hash_family", |b| {
        let fam = HashFamily::new(1024);
        b.iter(|| fam.hash(black_box(123_456), black_box(7)))
    });

    group.bench_function("pairwise_hash", |b| {
        let h = PairwiseHash::from_seed(3, 1024);
        b.iter(|| h.hash(black_box(123_456)))
    });

    group.bench_function("hash_bytes64_24B", |b| {
        b.iter(|| hash_bytes64(black_box(b"https://www.example.com/")))
    });

    group.bench_function("bitvec_accumulate_1024", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        let bv = BitVec::from_bools((0..1024).map(|_| rng.gen_bool(0.5)));
        let mut acc = vec![0u64; 1024];
        b.iter(|| bv.accumulate_into(black_box(&mut acc)))
    });

    group.bench_function("bloom_insert", |b| {
        let mut f = BloomFilter::new(128, 2, 0);
        b.iter(|| f.insert(black_box(b"example.com")))
    });

    group.bench_function("cms_insert", |b| {
        let mut s = CountMinSketch::new(4, 1024, 1);
        b.iter(|| s.insert(black_box(42)))
    });

    group.bench_function("count_mean_estimate", |b| {
        let mut s = CountMeanSketch::new(16, 1024, 1);
        for i in 0..10_000u64 {
            s.insert_weighted(i % 100, 1.0);
        }
        b.iter(|| s.estimate(black_box(7)))
    });

    for size in [256usize, 4096] {
        group.bench_with_input(BenchmarkId::new("fwht", size), &size, |b, &size| {
            let mut rng = StdRng::seed_from_u64(4);
            let mut v: Vec<f64> = (0..size).map(|_| rng.gen_range(-1.0..1.0)).collect();
            b.iter(|| fwht(black_box(&mut v)))
        });
    }

    group.bench_function("least_squares_128x32", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Matrix::from_vec(
            128,
            32,
            (0..128 * 32).map(|_| rng.gen_range(0.0..1.0)).collect(),
        );
        let y: Vec<f64> = (0..128).map(|_| rng.gen_range(0.0..10.0)).collect();
        b.iter(|| least_squares(black_box(&a), black_box(&y)))
    });

    group.bench_function("lasso_128x32", |b| {
        let mut rng = StdRng::seed_from_u64(6);
        let a = Matrix::from_vec(
            128,
            32,
            (0..128 * 32)
                .map(|_| if rng.gen_bool(0.2) { 1.0 } else { 0.0 })
                .collect(),
        );
        let y: Vec<f64> = (0..128).map(|_| rng.gen_range(0.0..10.0)).collect();
        b.iter(|| lasso(black_box(&a), black_box(&y), 1.0, true, 100, 1e-6))
    });

    group.finish();
}

criterion_group!(benches, bench_substrate);
criterion_main!(benches);
