//! Client-side encoding cost per mechanism — the "Internet scale" claim:
//! a report must cost microseconds on-device.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ldp_apple::cms::CmsProtocol;
use ldp_apple::hcms::HcmsProtocol;
use ldp_core::fo::{
    DirectEncoding, FrequencyOracle, HadamardResponse, OptimizedLocalHashing,
    OptimizedUnaryEncoding,
};
use ldp_core::rr::BinaryRandomizedResponse;
use ldp_core::Epsilon;
use ldp_microsoft::OneBitMean;
use ldp_rappor::{RapporClient, RapporParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_encode(c: &mut Criterion) {
    let eps = Epsilon::new(1.0).expect("valid eps");
    let mut group = c.benchmark_group("client_encode");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let mut rng = StdRng::seed_from_u64(1);

    group.bench_function("binary_rr", |b| {
        let rr = BinaryRandomizedResponse::new(eps);
        b.iter(|| rr.randomize(black_box(true), &mut rng))
    });

    group.bench_function("grr_d1024", |b| {
        let m = DirectEncoding::new(1024, eps).expect("valid domain");
        b.iter(|| m.randomize(black_box(17), &mut rng))
    });

    for d in [256u64, 4096] {
        group.bench_with_input(BenchmarkId::new("oue", d), &d, |b, &d| {
            let m = OptimizedUnaryEncoding::new(d, eps).expect("valid domain");
            b.iter(|| m.randomize(black_box(17), &mut rng))
        });
    }

    group.bench_function("olh_d2^30", |b| {
        let m = OptimizedLocalHashing::new(1 << 30, eps);
        b.iter(|| m.randomize(black_box(123_456), &mut rng))
    });

    group.bench_function("hr_d2^20", |b| {
        let m = HadamardResponse::new(1 << 20, eps);
        b.iter(|| m.randomize(black_box(123_456), &mut rng))
    });

    group.bench_function("rappor_report", |b| {
        let params = RapporParams::chrome_default(64).expect("valid params");
        let mut client = RapporClient::new(params, 3, &mut rng);
        b.iter(|| client.report(black_box(b"example.com"), &mut rng))
    });

    group.bench_function("apple_cms_m1024", |b| {
        let proto = CmsProtocol::new(64, 1024, Epsilon::new(4.0).expect("valid eps"), 9);
        b.iter(|| proto.randomize(black_box(42), &mut rng))
    });

    group.bench_function("apple_hcms_m1024", |b| {
        let proto = HcmsProtocol::new(64, 1024, Epsilon::new(4.0).expect("valid eps"), 9);
        b.iter(|| proto.randomize(black_box(42), &mut rng))
    });

    group.bench_function("microsoft_1bit", |b| {
        let m = OneBitMean::new(eps, 3600.0).expect("valid range");
        b.iter(|| m.randomize(black_box(900.0), &mut rng))
    });

    group.finish();
}

criterion_group!(benches, bench_encode);
criterion_main!(benches);
