//! Client-side encoding cost per mechanism — the "Internet scale" claim:
//! a report must cost microseconds on-device.
//!
//! The `client_encode_batch` group is the scalar-vs-batch comparison:
//! for the unary family it pits the frozen pre-batch-engine per-bit
//! randomizer (`legacy`) against today's scalar path (geometric-skip
//! sampling through `dyn RngCore`) and the fused batch path
//! (monomorphized draws, reports folded straight into the aggregator,
//! zero per-report allocation). The industrial mechanisms get the same
//! treatment: Apple CMS (legacy per-coordinate scalar vs reusable
//! `report_into` buffer vs fused counter path) and Microsoft dBitFlip
//! (legacy `O(k)`-pool scalar vs fused rejection+skip batch).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ldp_apple::cms::{CmsOracle, CmsProtocol, CmsReport};
use ldp_apple::hcms::HcmsProtocol;
use ldp_bench::legacy::{legacy_cms_randomize, legacy_dbitflip_randomize, legacy_unary_randomize};
use ldp_core::fo::{
    DirectEncoding, FoAggregator, FrequencyOracle, HadamardResponse, OptimizedLocalHashing,
    OptimizedUnaryEncoding, ThresholdHistogramEncoding,
};
use ldp_core::rr::BinaryRandomizedResponse;
use ldp_core::Epsilon;
use ldp_microsoft::DBitFlip;
use ldp_microsoft::OneBitMean;
use ldp_rappor::{RapporClient, RapporParams};
use ldp_sketch::BitVec;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_encode(c: &mut Criterion) {
    let eps = Epsilon::new(1.0).expect("valid eps");
    let mut group = c.benchmark_group("client_encode");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let mut rng = StdRng::seed_from_u64(1);

    group.bench_function("binary_rr", |b| {
        let rr = BinaryRandomizedResponse::new(eps);
        b.iter(|| rr.randomize(black_box(true), &mut rng))
    });

    group.bench_function("grr_d1024", |b| {
        let m = DirectEncoding::new(1024, eps).expect("valid domain");
        b.iter(|| m.randomize(black_box(17), &mut rng))
    });

    for d in [256u64, 4096] {
        group.bench_with_input(BenchmarkId::new("oue", d), &d, |b, &d| {
            let m = OptimizedUnaryEncoding::new(d, eps).expect("valid domain");
            b.iter(|| m.randomize(black_box(17), &mut rng))
        });
    }

    group.bench_function("olh_d2^30", |b| {
        let m = OptimizedLocalHashing::new(1 << 30, eps);
        b.iter(|| m.randomize(black_box(123_456), &mut rng))
    });

    group.bench_function("hr_d2^20", |b| {
        let m = HadamardResponse::new(1 << 20, eps);
        b.iter(|| m.randomize(black_box(123_456), &mut rng))
    });

    group.bench_function("rappor_report", |b| {
        let params = RapporParams::chrome_default(64).expect("valid params");
        let mut client = RapporClient::new(params, 3, &mut rng);
        b.iter(|| client.report(black_box(b"example.com"), &mut rng))
    });

    group.bench_function("apple_cms_m1024", |b| {
        let proto = CmsProtocol::new(64, 1024, Epsilon::new(4.0).expect("valid eps"), 9);
        b.iter(|| proto.randomize(black_box(42), &mut rng))
    });

    group.bench_function("apple_hcms_m1024", |b| {
        let proto = HcmsProtocol::new(64, 1024, Epsilon::new(4.0).expect("valid eps"), 9);
        b.iter(|| proto.randomize(black_box(42), &mut rng))
    });

    group.bench_function("microsoft_1bit", |b| {
        let m = OneBitMean::new(eps, 3600.0).expect("valid range");
        b.iter(|| m.randomize(black_box(900.0), &mut rng))
    });

    group.finish();
}

/// Scalar-vs-batch randomization for the unary family, over a 1k-report
/// batch so criterion's per-element throughput is comparable across the
/// three paths.
fn bench_encode_batch(c: &mut Criterion) {
    let eps = Epsilon::new(1.0).expect("valid eps");
    let batch: Vec<u64> = (0..1000u64).collect();
    let mut group = c.benchmark_group("client_encode_batch");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(batch.len() as u64));

    for d in [1024u64, 4096] {
        let oue = OptimizedUnaryEncoding::new(d, eps).expect("valid domain");
        let (p, q) = oue.probabilities();
        group.bench_with_input(BenchmarkId::new("oue_legacy_per_bit", d), &d, |b, &d| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| {
                let mut agg = oue.new_aggregator();
                for &v in &batch {
                    agg.accumulate(&legacy_unary_randomize(d, p, q, black_box(v), &mut rng));
                }
                agg.reports()
            })
        });
        group.bench_with_input(BenchmarkId::new("oue_scalar_geometric", d), &d, |b, _| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| {
                let mut agg = oue.new_aggregator();
                for &v in &batch {
                    agg.accumulate(&oue.randomize(black_box(v), &mut rng));
                }
                agg.reports()
            })
        });
        group.bench_with_input(BenchmarkId::new("oue_fused_batch", d), &d, |b, _| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| {
                let mut agg = oue.new_aggregator();
                oue.randomize_accumulate_batch(black_box(&batch), &mut rng, &mut agg);
                agg.reports()
            })
        });
    }

    // THE: the batch path replaces d Laplace draws with 2 + d·q uniforms.
    {
        let the = ThresholdHistogramEncoding::new(4096, eps).expect("valid domain");
        group.bench_function("the_fused_batch/4096", |b| {
            let mut rng = StdRng::seed_from_u64(5);
            b.iter(|| {
                let mut agg = the.new_aggregator();
                the.randomize_accumulate_batch(black_box(&batch), &mut rng, &mut agg);
                agg.reports()
            })
        });
    }

    // Apple CMS: frozen legacy per-coordinate scalar vs the reusable
    // report buffer vs the fused counter path.
    {
        let oracle = CmsOracle::new(16, 1024, Epsilon::new(2.0).expect("valid eps"), 31, 1024);
        group.bench_function("apple_cms_legacy_per_coord/1024", |b| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| {
                let mut server = oracle.protocol().new_server();
                for &v in &batch {
                    server.accumulate(&legacy_cms_randomize(
                        oracle.protocol(),
                        black_box(v),
                        &mut rng,
                    ));
                }
                server.reports()
            })
        });
        group.bench_function("apple_cms_report_into_reused_buf/1024", |b| {
            let mut rng = StdRng::seed_from_u64(7);
            let mut report = CmsReport::empty();
            b.iter(|| {
                let mut server = oracle.protocol().new_server();
                for &v in &batch {
                    oracle
                        .protocol()
                        .report_into(black_box(v), &mut rng, &mut report);
                    server.accumulate(&report);
                }
                server.reports()
            })
        });
        group.bench_function("apple_cms_fused_batch/1024", |b| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| {
                let mut agg = oracle.new_aggregator();
                oracle.randomize_accumulate_batch(black_box(&batch), &mut rng, &mut agg);
                agg.reports()
            })
        });
    }

    // Microsoft dBitFlip: frozen legacy O(k)-pool scalar vs the fused
    // rejection+skip batch path.
    {
        let dbf = DBitFlip::new(1024, 16, eps).expect("valid params");
        group.bench_function("ms_dbitflip_legacy_pool/k1024_d16", |b| {
            let mut rng = StdRng::seed_from_u64(9);
            b.iter(|| {
                let mut agg = DBitFlip::new_aggregator(&dbf);
                for &v in &batch {
                    agg.accumulate(&legacy_dbitflip_randomize(
                        &dbf,
                        black_box(v as u32),
                        &mut rng,
                    ));
                }
                agg.reports()
            })
        });
        group.bench_function("ms_dbitflip_fused_batch/k1024_d16", |b| {
            let mut rng = StdRng::seed_from_u64(9);
            b.iter(|| {
                let mut agg = DBitFlip::new_aggregator(&dbf);
                dbf.randomize_accumulate_batch(black_box(&batch), &mut rng, &mut agg);
                agg.reports()
            })
        });
    }

    // RAPPOR: allocation-free reporting through the reusable buffer.
    {
        let params = RapporParams::chrome_default(64).expect("valid params");
        let mut rng = StdRng::seed_from_u64(9);
        let mut client = RapporClient::new(params.clone(), 3, &mut rng);
        let mut buf = BitVec::zeros(params.bloom_bits());
        group.bench_function("rappor_report_into_reused_buf", |b| {
            let mut rng = StdRng::seed_from_u64(10);
            b.iter(|| {
                let mut total = 0usize;
                for _ in 0..batch.len() {
                    client.report_into(black_box(b"example.com"), &mut rng, &mut buf);
                    total += buf.count_ones();
                }
                total
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_encode, bench_encode_batch);
criterion_main!(benches);
