//! # `ldp-bench` — experiment binaries and microbenchmarks
//!
//! One binary per reproduced experiment (see DESIGN.md's experiment
//! index): `cargo run --release -p ldp-bench --bin exp_e2_fo_variance`
//! prints the table/series corresponding to that experiment, and
//! EXPERIMENTS.md records paper-vs-measured for each.
//!
//! Criterion microbenchmarks (`cargo bench -p ldp-bench`) back the
//! tutorial's scalability claims: client-side encoding is microseconds,
//! server-side aggregation is linear with small constants.
//!
//! This library target only hosts shared helpers for the binaries and
//! benches.

pub mod legacy;

/// Formats a float for experiment tables: fixed width, 4 significant
/// digits, scientific for very large/small magnitudes.
pub fn fmt_metric(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1e6 || x.abs() < 1e-3 {
        format!("{x:.3e}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::fmt_metric;

    #[test]
    fn formats_ranges() {
        assert_eq!(fmt_metric(0.0), "0");
        assert_eq!(fmt_metric(1234.5678), "1234.568");
        assert!(fmt_metric(1.0e9).contains('e'));
        assert!(fmt_metric(1.0e-9).contains('e'));
    }
}
