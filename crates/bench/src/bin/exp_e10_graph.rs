//! Experiment E10 — private graph statistics (Qin et al. CCS 2017 shape).
//!
//! Reproduces: degree-histogram error vs ε; and synthetic-graph fidelity
//! (L1 degree-distribution distance between the original and the
//! LDPGen-style synthetic graph) vs ε, against a non-private Chung–Lu
//! resample as the fidelity ceiling.
//!
//! Expected shape: errors shrink with ε; the synthetic graph's distance
//! approaches the non-private resampling floor for ε ≳ 2.

use ldp_analytics::graph::{degree_distribution_distance, private_degree_histogram, Graph, LdpGen};
use ldp_core::Epsilon;
use ldp_workloads::{metrics, ExperimentTable, Trials};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let trials = Trials::new(3, 13);
    let n = 5_000;
    let max_degree = 30;

    let mut t1 = ExperimentTable::new(
        "E10a: degree histogram MAE vs eps (BA graph, n=5000, m=3)",
        &["eps", "MAE (counts)"],
    );
    for &e in &[0.5, 1.0, 2.0, 4.0] {
        let stats = trials.run(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = Graph::barabasi_albert(n, 3, &mut rng);
            let truth: Vec<f64> = g
                .degree_histogram(max_degree)
                .iter()
                .map(|&c| c as f64)
                .collect();
            let est = private_degree_histogram(
                &g,
                max_degree,
                Epsilon::new(e).expect("valid eps"),
                &mut rng,
            );
            metrics::mae(&est, &truth)
        });
        t1.row(&[format!("{e}"), format!("{:.1}", stats.mean)]);
    }
    t1.print();

    let mut t2 = ExperimentTable::new(
        "E10b: synthetic-graph degree-distribution L1 distance vs eps (BA n=2000)",
        &["method", "L1 distance"],
    );
    // Non-private fidelity ceiling: Chung-Lu resample from exact degrees.
    let ceiling = trials.run(|seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = Graph::barabasi_albert(2000, 3, &mut rng);
        let weights: Vec<f64> = g.degrees().iter().map(|&d| d as f64).collect();
        let resampled = Graph::chung_lu(&weights, &mut rng);
        degree_distribution_distance(&g, &resampled, max_degree)
    });
    t2.row(&[
        "non-private Chung-Lu".into(),
        format!("{:.3}", ceiling.mean),
    ]);
    for &e in &[0.5, 1.0, 2.0, 4.0] {
        let stats = trials.run(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = Graph::barabasi_albert(2000, 3, &mut rng);
            let synth = LdpGen::new(Epsilon::new(e).expect("valid eps"))
                .synthesize(&g, &mut rng)
                .expect("non-empty graph");
            degree_distribution_distance(&g, &synth, max_degree)
        });
        t2.row(&[format!("LDPGen eps={e}"), format!("{:.3}", stats.mean)]);
    }
    t2.print();
}
