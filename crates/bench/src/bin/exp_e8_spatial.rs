//! Experiment E8 — private location collection (Chen et al. ICDE 2016
//! shape).
//!
//! Reproduces: range-query error vs grid granularity (the classic
//! too-coarse/too-noisy trade-off), hot-spot recall vs ε, and the
//! adaptive-grid refinement win.
//!
//! Expected shape: range error is U-shaped in g (uniformity error at
//! small g, noise accumulation at large g); hot-spot recall rises with ε;
//! adaptive grids localize peaks better than uniform grids at equal
//! budget.

use ldp_analytics::spatial::{AdaptiveGrid, Point, Rect, UniformGrid};
use ldp_core::Epsilon;
use ldp_workloads::{ExperimentTable, Trials};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Mixture: three Gaussian hot spots over a uniform background.
fn population(n: usize, rng: &mut StdRng) -> Vec<Point> {
    let spots = [(0.2, 0.3), (0.7, 0.7), (0.85, 0.15)];
    (0..n)
        .map(|_| {
            if rng.gen_bool(0.6) {
                let (mx, my) = spots[rng.gen_range(0..spots.len())];
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let r = (-2.0 * u1.ln()).sqrt() * 0.04;
                Point {
                    x: (mx + r * (2.0 * std::f64::consts::PI * u2).cos()).clamp(0.0, 1.0),
                    y: (my + r * (2.0 * std::f64::consts::PI * u2).sin()).clamp(0.0, 1.0),
                }
            } else {
                Point {
                    x: rng.gen_range(0.0..1.0),
                    y: rng.gen_range(0.0..1.0),
                }
            }
        })
        .collect()
}

fn main() {
    let trials = Trials::new(3, 31);
    let n = 100_000;

    // --- E8a: range query error vs granularity. ---
    let mut t1 = ExperimentTable::new(
        "E8a: range-query relative error vs grid granularity (n=100k, eps=1)",
        &["g", "rel error"],
    );
    let rect = Rect::new(0.1, 0.2, 0.45, 0.55).expect("valid rect");
    for &g in &[2u32, 4, 8, 16, 32, 64] {
        let stats = trials.run(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let points = population(n, &mut rng);
            let truth = points
                .iter()
                .filter(|p| p.x >= rect.x0 && p.x <= rect.x1 && p.y >= rect.y0 && p.y <= rect.y1)
                .count() as f64;
            let grid = UniformGrid::new(g, Epsilon::new(1.0).expect("valid eps")).expect("valid g");
            let est = grid.collect(&points, &mut rng);
            (est.range_query(rect) - truth).abs() / truth
        });
        t1.row(&[g.to_string(), format!("{:.4}", stats.mean)]);
    }
    t1.print();

    // --- E8b: hot-spot recall vs eps. ---
    let mut t2 = ExperimentTable::new(
        "E8b: hot-spot recall@3 vs eps (g=16, n=100k)",
        &["eps", "recall@3"],
    );
    let spot_cells = |g: u32| -> Vec<(u32, u32)> {
        [(0.2, 0.3), (0.7, 0.7), (0.85, 0.15)]
            .iter()
            .map(|&(x, y): &(f64, f64)| {
                (
                    ((x * g as f64) as u32).min(g - 1),
                    ((y * g as f64) as u32).min(g - 1),
                )
            })
            .collect()
    };
    for &e in &[0.25, 0.5, 1.0, 2.0, 4.0] {
        let stats = trials.run(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let points = population(n, &mut rng);
            let grid = UniformGrid::new(16, Epsilon::new(e).expect("valid eps")).expect("valid g");
            let est = grid.collect(&points, &mut rng);
            let hot = est.hot_spots(3);
            let truth = spot_cells(16);
            let hits = truth
                .iter()
                .filter(|&&(cx, cy)| {
                    hot.iter()
                        .any(|&(hx, hy, _)| hx.abs_diff(cx) <= 1 && hy.abs_diff(cy) <= 1)
                })
                .count();
            hits as f64 / 3.0
        });
        t2.row(&[format!("{e}"), format!("{:.2}", stats.mean)]);
    }
    t2.print();

    // --- E8c: adaptive vs uniform peak localization. ---
    let mut t3 = ExperimentTable::new(
        "E8c: peak localization error (distance to true peak, eps=2, n=100k)",
        &[
            "method",
            "effective resolution",
            "mean distance to (0.7,0.7)",
        ],
    );
    let uniform_err = trials.run(|seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        // Single-spot population centered at (0.7, 0.7).
        let points: Vec<Point> = (0..n)
            .map(|_| {
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let r = (-2.0 * u1.ln()).sqrt() * 0.05;
                Point {
                    x: (0.7 + r * (2.0 * std::f64::consts::PI * u2).cos()).clamp(0.0, 1.0),
                    y: (0.7 + r * (2.0 * std::f64::consts::PI * u2).sin()).clamp(0.0, 1.0),
                }
            })
            .collect();
        let grid = UniformGrid::new(4, Epsilon::new(2.0).expect("valid eps")).expect("valid g");
        let est = grid.collect(&points, &mut rng);
        let (cx, cy, _) = est.hot_spots(1)[0];
        let (px, py) = ((cx as f64 + 0.5) / 4.0, (cy as f64 + 0.5) / 4.0);
        ((px - 0.7f64).powi(2) + (py - 0.7f64).powi(2)).sqrt()
    });
    let adaptive_err = trials.run(|seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let points: Vec<Point> = (0..n)
            .map(|_| {
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let r = (-2.0 * u1.ln()).sqrt() * 0.05;
                Point {
                    x: (0.7 + r * (2.0 * std::f64::consts::PI * u2).cos()).clamp(0.0, 1.0),
                    y: (0.7 + r * (2.0 * std::f64::consts::PI * u2).sin()).clamp(0.0, 1.0),
                }
            })
            .collect();
        let ag =
            AdaptiveGrid::new(4, 4, 2, Epsilon::new(2.0).expect("valid eps")).expect("valid ag");
        let est = ag.collect(&points, &mut rng).expect("collect succeeds");
        let (cx, cy, sx, sy, _) = est.peak().expect("peak exists");
        let px = cx as f64 / 4.0 + (sx as f64 + 0.5) / 16.0;
        let py = cy as f64 / 4.0 + (sy as f64 + 0.5) / 16.0;
        ((px - 0.7f64).powi(2) + (py - 0.7f64).powi(2)).sqrt()
    });
    t3.row(&[
        "uniform 4x4".into(),
        "1/4".into(),
        format!("{:.4}", uniform_err.mean),
    ]);
    t3.row(&[
        "adaptive 4x4 -> 16x16".into(),
        "1/16".into(),
        format!("{:.4}", adaptive_err.mean),
    ]);
    t3.print();
}
