//! Ablation A1 — mechanism-internal parameter choices.
//!
//! The tutorial's design-space lesson is that the "optimized" mechanisms
//! are *optimized over a parameter*: OLH over the hash range `g`, THE
//! over the threshold `θ`, subset selection over the subset size `k`.
//! This ablation sweeps each parameter and verifies the implemented
//! optimum sits at the analytical minimum.

use ldp_core::fo::{FrequencyOracle, LocalHashing, SubsetSelection, ThresholdHistogramEncoding};
use ldp_core::Epsilon;
use ldp_workloads::ExperimentTable;

fn main() {
    let eps = Epsilon::new(1.0).expect("valid eps");
    let n = 10_000;
    let d = 1024u64;

    // --- OLH: variance vs g (optimum at g = e^eps + 1 ≈ 3.7). ---
    let mut t1 = ExperimentTable::new(
        "A1a: local hashing noise floor vs hash range g (eps=1; optimum near e^eps+1≈3.7)",
        &["g", "variance/n"],
    );
    for &g in &[2u64, 3, 4, 6, 8, 16, 64] {
        let lh = LocalHashing::with_g(d, g, eps);
        t1.row(&[
            g.to_string(),
            format!("{:.3}", lh.noise_floor_variance(n) / n as f64),
        ]);
    }
    t1.print();

    // --- THE: variance vs theta (optimum from golden-section search). ---
    let mut t2 = ExperimentTable::new(
        "A1b: THE noise floor vs threshold theta (eps=1)",
        &["theta", "variance/n"],
    );
    let opt = ThresholdHistogramEncoding::optimal_theta(eps);
    for &theta in &[0.55, 0.65, 0.75, 0.85, 0.95, 1.0] {
        let the = ThresholdHistogramEncoding::with_theta(64, eps, theta).expect("valid theta");
        t2.row(&[
            format!("{theta}"),
            format!("{:.3}", the.noise_floor_variance(n) / n as f64),
        ]);
    }
    let the_opt = ThresholdHistogramEncoding::with_theta(64, eps, opt).expect("valid theta");
    t2.row(&[
        format!("{opt:.4} (opt)"),
        format!("{:.3}", the_opt.noise_floor_variance(n) / n as f64),
    ]);
    t2.print();

    // --- SS: variance vs subset size k (optimum near d/(e^eps+1)). ---
    let mut t3 = ExperimentTable::new(
        "A1c: subset selection noise floor vs k (d=1024, eps=1; optimum near d/(e^eps+1)≈275)",
        &["k", "variance/n"],
    );
    for &k in &[1u64, 16, 64, 128, 275, 512, 900] {
        let ss = SubsetSelection::with_k(d, k, eps);
        t3.row(&[
            k.to_string(),
            format!("{:.3}", ss.noise_floor_variance(n) / n as f64),
        ]);
    }
    let auto = SubsetSelection::new(d, eps);
    t3.row(&[
        format!("{} (auto)", auto.k()),
        format!("{:.3}", auto.noise_floor_variance(n) / n as f64),
    ]);
    t3.print();
}
