//! Ablation A2 — consistency post-processing.
//!
//! Post-processing is free under DP; this ablation quantifies how much
//! accuracy it buys on skewed data: raw debiased estimates vs
//! non-negativity clamping vs rescaling vs the Norm-Sub simplex
//! projection, across skew levels.
//!
//! Expected shape: Norm-Sub dominates on skewed (sparse) distributions;
//! all projections converge on uniform data where estimates are already
//! almost consistent.

use ldp_core::fo::{collect_counts, OptimizedLocalHashing};
use ldp_core::postprocess::{clamp_nonnegative, norm_sub, normalize_to_total};
use ldp_core::Epsilon;
use ldp_workloads::gen::{exact_counts, ZipfGenerator};
use ldp_workloads::{metrics, ExperimentTable, Trials};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let trials = Trials::new(5, 61);
    let d = 256u64;
    let n = 20_000;
    let eps = Epsilon::new(1.0).expect("valid eps");

    let mut t = ExperimentTable::new(
        "A2: count MSE by post-processing method vs skew (d=256, n=20k, eps=1)",
        &["zipf s", "raw", "clamp>=0", "rescale", "norm-sub"],
    );
    for &s in &[0.0, 0.5, 1.0, 1.5, 2.0] {
        let zipf = ZipfGenerator::new(d, s).expect("valid zipf");
        let mut mses = [0.0f64; 4];
        let stats = trials.run(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let values = zipf.sample_n(n, &mut rng);
            let truth = exact_counts(&values, d);
            let oracle = OptimizedLocalHashing::new(d, eps);
            let raw = collect_counts(&oracle, &values, &mut rng);
            mses[0] += metrics::mse(&raw, &truth);
            mses[1] += metrics::mse(&clamp_nonnegative(&raw), &truth);
            mses[2] += metrics::mse(&normalize_to_total(&raw, n as f64), &truth);
            mses[3] += metrics::mse(&norm_sub(&raw, n as f64), &truth);
            0.0
        });
        let _ = stats;
        let k = trials.count as f64;
        t.row(&[
            format!("{s}"),
            format!("{:.0}", mses[0] / k),
            format!("{:.0}", mses[1] / k),
            format!("{:.0}", mses[2] / k),
            format!("{:.0}", mses[3] / k),
        ]);
    }
    t.print();
}
