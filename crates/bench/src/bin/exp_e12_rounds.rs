//! Experiment E12 — the power of multiple rounds (§1.4).
//!
//! Reproduces the two-round adaptive protocol's trade-off: head-item MSE
//! vs the round-1 fraction, against the one-round baseline, in and out of
//! the winning regime (`k + 1 ≪ 3e^ε + 2`).
//!
//! Expected shape: a U-curve in the round-1 fraction (too few users →
//! wrong head selected; too many → round 2 starved); a clear win over one
//! round at ε=2, k=4; no win at ε=1, k=8 (the regime boundary the
//! `ldp-analytics::rounds` docs derive).

use ldp_analytics::rounds::TwoRoundProtocol;
use ldp_core::Epsilon;
use ldp_workloads::gen::{exact_counts, ZipfGenerator};
use ldp_workloads::{ExperimentTable, Trials};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn head_mse(
    proto: &TwoRoundProtocol,
    values: &[u64],
    truth: &[f64],
    k: usize,
    seed: u64,
    two_round: bool,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let counts = if two_round {
        proto.collect(values, &mut rng).counts
    } else {
        proto.one_round_baseline(values, &mut rng)
    };
    (0..k).map(|i| (counts[i] - truth[i]).powi(2)).sum::<f64>() / k as f64
}

fn main() {
    let trials = Trials::new(12, 41);
    let d = 512u64;
    let n = 50_000;
    let zipf = ZipfGenerator::new(d, 1.4).expect("valid zipf");

    let mut t1 = ExperimentTable::new(
        "E12a: head MSE vs round-1 fraction (d=512, k=4, eps=2, n=50k)",
        &["round-1 fraction", "two-round MSE", "one-round MSE"],
    );
    for &frac in &[0.1, 0.2, 0.3, 0.5, 0.7] {
        let proto = TwoRoundProtocol::new(d, 4, frac, Epsilon::new(2.0).expect("valid eps"))
            .expect("valid protocol");
        let two = trials.run(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let values = zipf.sample_n(n, &mut rng);
            let truth = exact_counts(&values, d);
            head_mse(&proto, &values, &truth, 4, seed ^ 1, true)
        });
        let one = trials.run(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let values = zipf.sample_n(n, &mut rng);
            let truth = exact_counts(&values, d);
            head_mse(&proto, &values, &truth, 4, seed ^ 2, false)
        });
        t1.row(&[
            format!("{frac}"),
            format!("{:.0}", two.mean),
            format!("{:.0}", one.mean),
        ]);
    }
    t1.print();

    let mut t2 = ExperimentTable::new(
        "E12b: regime boundary — two-round win factor vs (eps, k)",
        &["eps", "k", "3e^eps+2", "one-round/two-round MSE"],
    );
    for &(e, k) in &[(0.5, 4usize), (1.0, 8), (2.0, 4), (2.0, 16), (3.0, 8)] {
        let proto = TwoRoundProtocol::new(d, k, 0.3, Epsilon::new(e).expect("valid eps"))
            .expect("valid protocol");
        let two = trials.run(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let values = zipf.sample_n(n, &mut rng);
            let truth = exact_counts(&values, d);
            head_mse(&proto, &values, &truth, k, seed ^ 3, true)
        });
        let one = trials.run(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let values = zipf.sample_n(n, &mut rng);
            let truth = exact_counts(&values, d);
            head_mse(&proto, &values, &truth, k, seed ^ 4, false)
        });
        t2.row(&[
            format!("{e}"),
            k.to_string(),
            format!("{:.1}", 3.0 * e.exp() + 2.0),
            format!("{:.2}", one.mean / two.mean),
        ]);
    }
    t2.print();
}
