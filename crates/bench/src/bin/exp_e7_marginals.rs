//! Experiment E7 — marginal release (Cormode–Kulkarni–Srivastava shape).
//!
//! Reproduces the paper's core comparison: average L1 error of all k-way
//! marginals under (a) the Fourier approach, (b) full materialization,
//! (c) direct per-marginal collection with split users — as the number of
//! attributes d grows and as k varies.
//!
//! Expected shape: full materialization degrades exponentially in d−k;
//! direct collection degrades with the number of marginals; Fourier stays
//! flat and wins for d ≳ 8.

use ldp_analytics::marginals::{
    exact_marginal, full_materialization_marginal, FourierMarginals, MarginalQuery,
};
use ldp_core::fo::{FoAggregator, FrequencyOracle, OptimizedLocalHashing};
use ldp_core::Epsilon;
use ldp_workloads::{ExperimentTable, Trials};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Correlated binary data: attribute j+1 copies attribute j w.p. 0.8.
fn data(n: usize, d: u32, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut x = rng.gen_bool(0.5) as u64;
            let mut prev = x & 1;
            for j in 1..d {
                let bit = if rng.gen_bool(0.8) { prev } else { 1 - prev };
                x |= bit << j;
                prev = bit;
            }
            x
        })
        .collect()
}

/// All C(d, 2) pairwise marginal queries.
fn all_pairs(d: u32) -> Vec<MarginalQuery> {
    let mut out = Vec::new();
    for a in 0..d {
        for b in (a + 1)..d {
            out.push(MarginalQuery::from_attrs(&[a, b]));
        }
    }
    out
}

/// Average L1 error of a method's marginal tables against ground truth.
fn avg_l1<F: FnMut(MarginalQuery) -> Vec<f64>>(
    queries: &[MarginalQuery],
    truth_data: &[u64],
    mut f: F,
) -> f64 {
    let mut total = 0.0;
    for &q in queries {
        let truth = exact_marginal(truth_data, q);
        let est = f(q);
        total += est
            .iter()
            .zip(&truth.probabilities)
            .map(|(e, t)| (e - t).abs())
            .sum::<f64>();
    }
    total / queries.len() as f64
}

/// Direct baseline: split users across queries, OLH per marginal.
fn direct_collection(
    data_slice: &[u64],
    queries: &[MarginalQuery],
    epsilon: Epsilon,
    rng: &mut StdRng,
) -> Vec<Vec<f64>> {
    let m = queries.len();
    let mut out = Vec::with_capacity(m);
    for (qi, &q) in queries.iter().enumerate() {
        let users: Vec<u64> = data_slice
            .iter()
            .enumerate()
            .filter(|(i, _)| i % m == qi)
            .map(|(_, &x)| x)
            .collect();
        let k = q.arity();
        let attrs: Vec<u32> = (0..64).filter(|&i| q.0 >> i & 1 == 1).collect();
        let project = |x: u64| -> u64 {
            attrs
                .iter()
                .enumerate()
                .map(|(bit, &a)| ((x >> a) & 1) << bit)
                .sum()
        };
        let oracle = OptimizedLocalHashing::new(1u64 << k, epsilon);
        let mut agg = oracle.new_aggregator();
        for &x in &users {
            agg.accumulate(&oracle.randomize(project(x), rng));
        }
        let counts = agg.estimate();
        let n = users.len().max(1) as f64;
        out.push(counts.iter().map(|&c| c / n).collect());
    }
    out
}

fn main() {
    let trials = Trials::new(3, 5);
    let eps = Epsilon::new(1.0).expect("valid eps");
    let n = 50_000;

    let mut t1 = ExperimentTable::new(
        "E7a: avg L1 error of all 2-way marginals vs d (n=50k, eps=1)",
        &[
            "d",
            "#marginals",
            "Fourier",
            "Full materialization",
            "Direct (split users)",
        ],
    );
    for &d in &[4u32, 6, 8, 10, 12] {
        let queries = all_pairs(d);
        let fourier = trials.run(|seed| {
            let dat = data(n, d, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 1);
            let fm = FourierMarginals::new(d, &queries, eps).expect("valid queries");
            let coeffs = fm.collect(&dat, &mut rng);
            avg_l1(&queries, &dat, |q| fm.reconstruct(&coeffs, q).probabilities)
        });
        let full = trials.run(|seed| {
            let dat = data(n, d, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 2);
            avg_l1(&queries, &dat, |q| {
                full_materialization_marginal(&dat, d, q, eps, &mut rng).probabilities
            })
        });
        let direct = trials.run(|seed| {
            let dat = data(n, d, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 3);
            let tables = direct_collection(&dat, &queries, eps, &mut rng);
            let mut total = 0.0;
            for (q, est) in queries.iter().zip(&tables) {
                let truth = exact_marginal(&dat, *q);
                total += est
                    .iter()
                    .zip(&truth.probabilities)
                    .map(|(e, t)| (e - t).abs())
                    .sum::<f64>();
            }
            total / queries.len() as f64
        });
        t1.row(&[
            d.to_string(),
            queries.len().to_string(),
            format!("{:.4}", fourier.mean),
            format!("{:.4}", full.mean),
            format!("{:.4}", direct.mean),
        ]);
    }
    t1.print();

    let mut t2 = ExperimentTable::new(
        "E7b: Fourier coefficient budget vs k (d=10): pool size = downward closure",
        &["k", "#coefficients (one k-way query)"],
    );
    for &k in &[1u32, 2, 3, 4, 5] {
        let attrs: Vec<u32> = (0..k).collect();
        let q = MarginalQuery::from_attrs(&attrs);
        let fm = FourierMarginals::new(10, &[q], eps).expect("valid query");
        t2.row(&[k.to_string(), fm.coefficient_count().to_string()]);
    }
    t2.print();
}
