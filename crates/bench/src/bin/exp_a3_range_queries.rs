//! Ablation A3 — hierarchical vs flat range queries (§1.3's rectilinear
//! counting primitive).
//!
//! Sweeps range length: flat histograms accumulate one noise term per
//! cell (error ∝ √length), the b-ary interval tree needs only
//! O(b·log_b d) terms (error ≈ flat for short ranges, far better for
//! long ones). Also sweeps the branching factor.

use ldp_analytics::hierarchy::{flat_range_count, HierarchicalHistogram};
use ldp_core::Epsilon;
use ldp_workloads::{ExperimentTable, Trials};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn values(n: usize, d: u64, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let a: u64 = rng.gen_range(0..d);
            let b: u64 = rng.gen_range(0..d);
            a.min(b)
        })
        .collect()
}

fn main() {
    let trials = Trials::new(5, 71);
    let d = 1024u64;
    let n = 60_000;
    let eps = Epsilon::new(1.0).expect("valid eps");

    let mut t1 = ExperimentTable::new(
        "A3a: range-count abs error vs range length (d=1024, n=60k, eps=1, b=4)",
        &["length", "hierarchical", "flat"],
    );
    for &len in &[8u64, 32, 128, 512, 1000] {
        let lo = 10u64;
        let hi = lo + len;
        let hier = trials.run(|seed| {
            let vals = values(n, d, seed);
            let truth = vals.iter().filter(|&&v| v >= lo && v < hi).count() as f64;
            let mut rng = StdRng::seed_from_u64(seed ^ 1);
            let h = HierarchicalHistogram::new(d, 4, eps).expect("valid tree");
            (h.collect(&vals, &mut rng).range_count(lo, hi) - truth).abs()
        });
        let flat = trials.run(|seed| {
            let vals = values(n, d, seed);
            let truth = vals.iter().filter(|&&v| v >= lo && v < hi).count() as f64;
            let mut rng = StdRng::seed_from_u64(seed ^ 2);
            (flat_range_count(&vals, d, lo, hi, eps, &mut rng) - truth).abs()
        });
        t1.row(&[
            len.to_string(),
            format!("{:.0}", hier.mean),
            format!("{:.0}", flat.mean),
        ]);
    }
    t1.print();

    let mut t2 = ExperimentTable::new(
        "A3b: branching-factor ablation (range [10, 522), d=1024)",
        &["b", "depth", "abs error"],
    );
    for &b in &[2u64, 4, 8, 16] {
        let h = HierarchicalHistogram::new(d, b, eps).expect("valid tree");
        let depth = h.depth();
        let err = trials.run(|seed| {
            let vals = values(n, d, seed);
            let truth = vals.iter().filter(|&&v| (10..522).contains(&v)).count() as f64;
            let mut rng = StdRng::seed_from_u64(seed ^ 3);
            let h = HierarchicalHistogram::new(d, b, eps).expect("valid tree");
            (h.collect(&vals, &mut rng).range_count(10, 522) - truth).abs()
        });
        t2.row(&[b.to_string(), depth.to_string(), format!("{:.0}", err.mean)]);
    }
    t2.print();

    let mut t3 = ExperimentTable::new(
        "A3c: private quantile error (d=1024, n=60k, eps=1, b=4)",
        &["q", "abs error (domain units)"],
    );
    for &q in &[0.1, 0.25, 0.5, 0.75, 0.9] {
        let err = trials.run(|seed| {
            let vals = values(n, d, seed);
            let mut sorted = vals.clone();
            sorted.sort_unstable();
            let truth = sorted[(q * n as f64) as usize] as f64;
            let mut rng = StdRng::seed_from_u64(seed ^ 4);
            let h = HierarchicalHistogram::new(d, 4, eps).expect("valid tree");
            (h.collect(&vals, &mut rng).quantile(q) as f64 - truth).abs()
        });
        t3.row(&[format!("{q}"), format!("{:.1}", err.mean)]);
    }
    t3.print();
}
