//! Experiment E11 — the central-vs-local accuracy gap (§1.5).
//!
//! The tutorial's core motivation: with a trusted aggregator, histogram
//! error is Θ(1/ε) per cell *independent of n*; under LDP it is
//! Θ(√n/ε). Reproduces both scalings and the resulting relative-error
//! picture ("LDP needs quadratically more users for the same relative
//! accuracy").
//!
//! Expected shape: central MAE flat in n; local MAE grows as √n; relative
//! error (MAE / (n/d)) falls as 1/√n under LDP, as 1/n centrally.

use ldp_analytics::central::CentralHistogram;
use ldp_core::fo::{collect_counts, OptimizedLocalHashing};
use ldp_core::Epsilon;
use ldp_workloads::gen::{exact_counts, ZipfGenerator};
use ldp_workloads::{metrics, ExperimentTable, Trials};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let trials = Trials::new(5, 23);
    let d = 64u64;
    let eps = Epsilon::new(1.0).expect("valid eps");
    let zipf = ZipfGenerator::new(d, 1.0).expect("valid zipf");

    let mut t = ExperimentTable::new(
        "E11: histogram MAE, central vs local, vs n (d=64, eps=1)",
        &[
            "n",
            "central MAE",
            "local (OLH) MAE",
            "gap factor",
            "sqrt(n)",
        ],
    );
    for &n in &[1_000usize, 10_000, 100_000, 1_000_000] {
        let central = trials.run(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let values = zipf.sample_n(n, &mut rng);
            let truth = exact_counts(&values, d);
            let mech = CentralHistogram::new(d, eps);
            let est = mech.release(&values, &mut rng);
            metrics::mae(&est, &truth)
        });
        let local = trials.run(|seed| {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
            let values = zipf.sample_n(n, &mut rng);
            let truth = exact_counts(&values, d);
            let oracle = OptimizedLocalHashing::new(d, eps);
            let est = collect_counts(&oracle, &values, &mut rng);
            metrics::mae(&est, &truth)
        });
        t.row(&[
            n.to_string(),
            format!("{:.1}", central.mean),
            format!("{:.1}", local.mean),
            format!("{:.0}", local.mean / central.mean),
            format!("{:.0}", (n as f64).sqrt()),
        ]);
    }
    t.print();
}
