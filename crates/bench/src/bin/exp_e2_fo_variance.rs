//! Experiment E2 — the frequency-oracle design space (Wang et al.,
//! USENIX Security 2017, Fig. 2 / Tab. 2 shape).
//!
//! Regenerates the tutorial's central comparison:
//! * analytical noise-floor variance per mechanism vs ε and vs d;
//! * empirical MSE agreeing with the analytical floor;
//! * the GRR↔OUE crossover at `d = 3e^ε + 2`;
//! * communication cost per report.
//!
//! Expected shape: OUE ≈ OLH ≈ HR share the optimal floor
//! `4e^ε/(e^ε−1)²·n`; SUE is a constant factor worse; SHE worse still;
//! GRR degrades linearly in d but wins below the crossover.

use ldp_core::fo::{
    collect_counts, DirectEncoding, FrequencyOracle, HadamardResponse, OptimizedLocalHashing,
    OptimizedUnaryEncoding, SummationHistogramEncoding, SymmetricUnaryEncoding,
    ThresholdHistogramEncoding,
};
use ldp_core::Epsilon;
use ldp_workloads::gen::{exact_counts, ZipfGenerator};
use ldp_workloads::{metrics, ExperimentTable, Trials};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn analytical_row(d: u64, eps: Epsilon, n: usize) -> Vec<f64> {
    vec![
        DirectEncoding::new(d, eps)
            .expect("d>=2")
            .noise_floor_variance(n),
        SymmetricUnaryEncoding::new(d, eps)
            .expect("d>=2")
            .noise_floor_variance(n),
        OptimizedUnaryEncoding::new(d, eps)
            .expect("d>=2")
            .noise_floor_variance(n),
        ThresholdHistogramEncoding::new(d, eps)
            .expect("d>=2")
            .noise_floor_variance(n),
        SummationHistogramEncoding::new(d, eps)
            .expect("d>=2")
            .noise_floor_variance(n),
        OptimizedLocalHashing::new(d, eps).noise_floor_variance(n),
        HadamardResponse::new(d, eps).noise_floor_variance(n),
    ]
}

fn main() {
    let n = 10_000usize;
    const NAMES: [&str; 7] = ["GRR", "SUE", "OUE", "THE", "SHE", "OLH", "HR"];

    // --- Analytical variance vs eps (d = 256). ---
    let mut t1 = ExperimentTable::new(
        "E2a: analytical noise-floor variance / n vs eps (d=256)",
        &["eps", "GRR", "SUE", "OUE", "THE", "SHE", "OLH", "HR"],
    );
    for &e in &[0.5, 1.0, 2.0, 4.0] {
        let eps = Epsilon::new(e).expect("valid eps");
        let row = analytical_row(256, eps, n);
        let mut cells = vec![format!("{e}")];
        cells.extend(row.iter().map(|v| format!("{:.2}", v / n as f64)));
        t1.row(&cells);
    }
    t1.print();

    // --- Analytical variance vs d (eps = 1). ---
    let mut t2 = ExperimentTable::new(
        "E2b: analytical noise-floor variance / n vs d (eps=1); crossover d=3e+2≈10.2",
        &["d", "GRR", "OUE", "OLH", "GRR wins?"],
    );
    for &d in &[4u64, 8, 16, 64, 256, 1024] {
        let eps = Epsilon::new(1.0).expect("valid eps");
        let grr = DirectEncoding::new(d, eps)
            .expect("d>=2")
            .noise_floor_variance(n)
            / n as f64;
        let oue = OptimizedUnaryEncoding::new(d, eps)
            .expect("d>=2")
            .noise_floor_variance(n)
            / n as f64;
        let olh = OptimizedLocalHashing::new(d, eps).noise_floor_variance(n) / n as f64;
        t2.row(&[
            d.to_string(),
            format!("{grr:.2}"),
            format!("{oue:.2}"),
            format!("{olh:.2}"),
            if grr < oue { "yes" } else { "no" }.to_string(),
        ]);
    }
    t2.print();

    // --- Empirical MSE vs analytical floor (d = 64, eps = 1, Zipf 1.1). ---
    let d = 64u64;
    let eps = Epsilon::new(1.0).expect("valid eps");
    let zipf = ZipfGenerator::new(d, 1.1).expect("valid zipf");
    let trials = Trials::new(10, 1000);
    let mut t3 = ExperimentTable::new(
        "E2c: empirical count MSE vs analytical floor (d=64, eps=1, n=10k, Zipf 1.1)",
        &[
            "mechanism",
            "empirical MSE",
            "analytical floor",
            "ratio",
            "report bits",
        ],
    );
    macro_rules! empirical {
        ($oracle:expr, $idx:expr) => {{
            let oracle = $oracle;
            let stats = trials.run(|seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let values = zipf.sample_n(n, &mut rng);
                let truth = exact_counts(&values, d);
                let est = collect_counts(&oracle, &values, &mut rng);
                metrics::mse(&est, &truth)
            });
            let floor = analytical_row(d, eps, n)[$idx];
            t3.row(&[
                NAMES[$idx].to_string(),
                format!("{:.0}", stats.mean),
                format!("{:.0}", floor),
                format!("{:.2}", stats.mean / floor),
                oracle.report_bits().to_string(),
            ]);
        }};
    }
    empirical!(DirectEncoding::new(d, eps).expect("d>=2"), 0);
    empirical!(SymmetricUnaryEncoding::new(d, eps).expect("d>=2"), 1);
    empirical!(OptimizedUnaryEncoding::new(d, eps).expect("d>=2"), 2);
    empirical!(ThresholdHistogramEncoding::new(d, eps).expect("d>=2"), 3);
    empirical!(SummationHistogramEncoding::new(d, eps).expect("d>=2"), 4);
    empirical!(OptimizedLocalHashing::new(d, eps), 5);
    empirical!(HadamardResponse::new(d, eps), 6);
    t3.print();
}
