//! Experiment E5 — Microsoft telemetry (NeurIPS 2017 Figs. 2–3 shape).
//!
//! Reproduces: 1BitMean error vs population size (the paper's headline
//! "accurate at millions of devices"); dBitFlip histogram error vs d
//! (bits per device); and memoization behaviour over repeated rounds —
//! stable values leak nothing new while the round-mean stays accurate.

use ldp_core::Epsilon;
use ldp_microsoft::{DBitFlip, MemoizedMeanClient, OneBitMean, RoundingConfig};
use ldp_workloads::gen::{gaussian_population, NumericStream};
use ldp_workloads::{metrics, ExperimentTable, Trials};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let trials = Trials::new(5, 3);
    let eps = Epsilon::new(1.0).expect("valid eps");
    let max_value = 3600.0; // seconds of app usage per hour

    // --- E5a: 1BitMean absolute error vs n. ---
    let mut t1 = ExperimentTable::new(
        "E5a: 1BitMean absolute error vs n (eps=1, values in [0, 3600])",
        &["n", "abs error (s)", "predicted sd"],
    );
    for &n in &[10_000usize, 100_000, 1_000_000] {
        let mech = OneBitMean::new(eps, max_value).expect("valid range");
        let stats = trials.run(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let stream = NumericStream::new(n, max_value, 0.0, 0.0, &mut rng);
            let values = stream.round_values(0, &mut rng);
            let truth = values.iter().sum::<f64>() / n as f64;
            let bits: Vec<bool> = values
                .iter()
                .map(|&x| mech.randomize(x, &mut rng))
                .collect();
            (mech.estimate_mean(&bits) - truth).abs()
        });
        t1.row(&[
            n.to_string(),
            format!("{:.2}", stats.mean),
            format!("{:.2}", mech.worst_case_variance(n).sqrt()),
        ]);
    }
    t1.print();

    // --- E5b: dBitFlip histogram error vs d. ---
    let k = 32u32;
    let mut t2 = ExperimentTable::new(
        "E5b: dBitFlip histogram MAE vs bits-per-device d (k=32 buckets, n=100k, eps=1)",
        &["d", "MAE (counts)", "predicted sd"],
    );
    for &d in &[1u32, 2, 4, 8, 16, 32] {
        let mech = DBitFlip::new(k, d, eps).expect("valid d");
        let stats = trials.run(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 100_000;
            let pop = gaussian_population(n, k as u64, 0.15, &mut rng);
            let mut truth = vec![0f64; k as usize];
            let mut agg = mech.new_aggregator();
            for &v in &pop {
                truth[v as usize] += 1.0;
                agg.accumulate(&mech.randomize(v as u32, &mut rng));
            }
            metrics::mae(&agg.estimate(), &truth)
        });
        t2.row(&[
            d.to_string(),
            format!("{:.0}", stats.mean),
            format!("{:.0}", mech.count_variance(100_000).sqrt()),
        ]);
    }
    t2.print();

    // --- E5c: memoization over rounds. ---
    let mut t3 = ExperimentTable::new(
        "E5c: memoized repeated collection (n=50k, 10 rounds, gamma=0.1)",
        &[
            "round",
            "mean abs err (s)",
            "distinct msgs/device (stable value)",
        ],
    );
    let mech = OneBitMean::new(eps, max_value).expect("valid range");
    let config = RoundingConfig::new(0.1).expect("valid gamma");
    let mut rng = StdRng::seed_from_u64(777);
    let n = 50_000;
    let stream = NumericStream::new(n, max_value, 0.0, 0.0, &mut rng);
    let clients: Vec<MemoizedMeanClient> = (0..n)
        .map(|_| MemoizedMeanClient::enroll(mech, config, &mut rng))
        .collect();
    let values = stream.round_values(0, &mut rng);
    let truth = values.iter().sum::<f64>() / n as f64;
    // Track message diversity of device 0 with gamma = 0 separately.
    let pure = RoundingConfig::new(0.0).expect("valid gamma");
    let pure_client = MemoizedMeanClient::enroll(mech, pure, &mut rng);
    let mut distinct = std::collections::HashSet::new();
    for round in 0..10 {
        let bits: Vec<bool> = clients
            .iter()
            .zip(&values)
            .map(|(c, &x)| c.report(x, &mut rng))
            .collect();
        let est = MemoizedMeanClient::estimate_round_mean(&mech, &config, &bits);
        distinct.insert(pure_client.report(values[0], &mut rng));
        t3.row(&[
            round.to_string(),
            format!("{:.2}", (est - truth).abs()),
            distinct.len().to_string(),
        ]);
    }
    t3.print();
}
