//! Experiment E4 — Apple CMS/HCMS accuracy (white-paper shape).
//!
//! Apple's white paper reports count accuracy for popular items as a
//! function of ε and sketch size, and that HCMS (1-bit reports) matches
//! CMS (m-bit reports). Reproduced on Zipf token streams over a 2^16
//! token dictionary.
//!
//! Expected shape: error falls with ε and with sketch width m (collision
//! bias); HCMS tracks CMS closely at ~1/m-th the communication.

use ldp_apple::cms::CmsProtocol;
use ldp_apple::hcms::HcmsProtocol;
use ldp_core::Epsilon;
use ldp_workloads::gen::ZipfGenerator;
use ldp_workloads::{ExperimentTable, Trials};
use rand::rngs::StdRng;
use rand::SeedableRng;

const DICT: u64 = 1 << 16;
const TOP: usize = 20;

/// Mean absolute error over the true top-20 tokens, as a fraction of n.
fn run(n: usize, k: usize, m: usize, eps: f64, hadamard: bool, seed: u64) -> f64 {
    let epsilon = Epsilon::new(eps).expect("valid eps");
    let zipf = ZipfGenerator::new(DICT, 1.3).expect("valid zipf");
    let mut rng = StdRng::seed_from_u64(seed);
    let values = zipf.sample_n(n, &mut rng);
    let mut truth = vec![0f64; TOP];
    for &v in &values {
        if (v as usize) < TOP {
            truth[v as usize] += 1.0;
        }
    }
    let items: Vec<u64> = (0..TOP as u64).collect();
    let ests: Vec<f64> = if hadamard {
        let proto = HcmsProtocol::new(k, m, epsilon, 7);
        let mut server = proto.new_server();
        for &v in &values {
            server.accumulate(&proto.randomize(v, &mut rng));
        }
        server.estimate_items(&items)
    } else {
        let proto = CmsProtocol::new(k, m, epsilon, 7);
        let mut server = proto.new_server();
        for &v in &values {
            server.accumulate(&proto.randomize(v, &mut rng));
        }
        server.estimate_items(&items)
    };
    let mae: f64 = ests
        .iter()
        .zip(&truth)
        .map(|(e, t)| (e - t).abs())
        .sum::<f64>()
        / TOP as f64;
    mae / n as f64
}

fn main() {
    let trials = Trials::new(5, 11);
    let n = 50_000;

    let mut t1 = ExperimentTable::new(
        "E4a: CMS vs HCMS relative MAE on top-20 tokens vs eps (k=64, m=1024, n=50k)",
        &["eps", "CMS", "HCMS"],
    );
    for &e in &[1.0, 2.0, 4.0, 8.0] {
        let cms = trials.run(|seed| run(n, 64, 1024, e, false, seed));
        let hcms = trials.run(|seed| run(n, 64, 1024, e, true, seed));
        t1.row(&[
            format!("{e}"),
            format!("{:.4}", cms.mean),
            format!("{:.4}", hcms.mean),
        ]);
    }
    t1.print();

    let mut t2 = ExperimentTable::new(
        "E4b: CMS relative MAE vs sketch width m (k=64, eps=4, n=50k)",
        &["m", "CMS MAE", "per-report bits"],
    );
    for &m in &[64usize, 256, 1024, 4096] {
        let cms = trials.run(|seed| run(n, 64, m, 4.0, false, seed));
        t2.row(&[m.to_string(), format!("{:.4}", cms.mean), m.to_string()]);
    }
    t2.print();

    let mut t3 = ExperimentTable::new(
        "E4c: HCMS communication advantage (eps=4, n=50k)",
        &["m", "HCMS MAE", "HCMS payload bits"],
    );
    for &m in &[256usize, 1024, 4096] {
        let hcms = trials.run(|seed| run(n, 64, m, 4.0, true, seed));
        // Payload: row index + coeff index + 1 sign bit.
        let bits = (64 - (64u64 - 1).leading_zeros()) + (64 - (m as u64 - 1).leading_zeros()) + 1;
        t3.row(&[m.to_string(), format!("{:.4}", hcms.mean), bits.to_string()]);
    }
    t3.print();
}
