//! Experiment E6 — heavy hitters over massive domains (Bassily–Smith /
//! TreeHist / PEM shape).
//!
//! Reproduces: NCR (rank-weighted recall) of the discovered top-k as the
//! population grows and as ε varies, on a 32-bit domain where full-domain
//! sweeps are impossible; plus the PEM-vs-TreeHist step-size ablation.
//!
//! Expected shape: NCR rises with n and ε; wider steps (PEM) beat step-1
//! (TreeHist) at equal population because fewer levels split the users
//! less thinly.
//!
//! Since the cohort-sharded aggregation engine landed, every level runs
//! on cohort-mode OLH (a `C×g` count matrix instead of raw reports) and
//! the sharded parallel collection harness, so E6a also records wall
//! time per trial — the deployment-scale story next to the accuracy one.

use ldp_analytics::hh::PrefixExtendingMethod;
use ldp_core::Epsilon;
use ldp_workloads::gen::ZipfGenerator;
use ldp_workloads::{ExperimentTable, Trials};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BITS: u32 = 32;
const K: usize = 10;

/// Builds a population whose top-K values are Zipf-heavy within a huge
/// domain, returns (values, true top values in rank order).
fn population(n: usize, seed: u64) -> (Vec<u64>, Vec<u64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let heavy: Vec<u64> = (0..K as u64)
        .map(|i| ldp_sketch::hash::mix64(i + 12345) & 0xffff_ffff)
        .collect();
    let zipf = ZipfGenerator::new(K as u64, 1.2).expect("valid zipf");
    let values = (0..n)
        .map(|_| {
            if rng.gen_bool(0.7) {
                heavy[zipf.sample(&mut rng) as usize]
            } else {
                rng.gen::<u64>() & 0xffff_ffff
            }
        })
        .collect();
    (values, heavy)
}

/// NCR of discovered hitters against the true rank order.
fn ncr(found: &[ldp_analytics::hh::HeavyHitter], truth: &[u64]) -> f64 {
    let k = truth.len();
    let max: f64 = (1..=k).map(|x| x as f64).sum();
    let score: f64 = found
        .iter()
        .take(k)
        .filter_map(|h| truth.iter().position(|&t| t == h.value))
        .map(|rank| (k - rank) as f64)
        .sum();
    score / max
}

fn main() {
    let trials = Trials::new(3, 21);

    let mut t1 = ExperimentTable::new(
        "E6a: PEM NCR@10 vs population (32-bit domain, eps=4, keep=16)",
        &["n", "NCR@10", "s/trial"],
    );
    for &n in &[50_000usize, 100_000, 300_000] {
        let started = std::time::Instant::now();
        let stats = trials.run(|seed| {
            let pem =
                PrefixExtendingMethod::new(BITS, 8, 4, 16, Epsilon::new(4.0).expect("valid eps"))
                    .expect("valid pem");
            let (values, truth) = population(n, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xdead);
            ncr(&pem.run(&values, &mut rng), &truth)
        });
        let per_trial = started.elapsed().as_secs_f64() / stats.trials as f64;
        t1.row(&[
            n.to_string(),
            format!("{:.2}", stats.mean),
            format!("{per_trial:.2}"),
        ]);
    }
    t1.print();

    let mut t2 = ExperimentTable::new("E6b: PEM NCR@10 vs eps (n=100k)", &["eps", "NCR@10"]);
    for &e in &[1.0, 2.0, 4.0] {
        let stats = trials.run(|seed| {
            let pem =
                PrefixExtendingMethod::new(BITS, 8, 4, 16, Epsilon::new(e).expect("valid eps"))
                    .expect("valid pem");
            let (values, truth) = population(100_000, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xbeef);
            ncr(&pem.run(&values, &mut rng), &truth)
        });
        t2.row(&[format!("{e}"), format!("{:.2}", stats.mean)]);
    }
    t2.print();

    let mut t3 = ExperimentTable::new(
        "E6c: step-size ablation (n=100k, eps=4): PEM (wide steps) vs TreeHist (step 1)",
        &["step", "levels", "NCR@10"],
    );
    for &step in &[1u32, 2, 4, 8] {
        let stats = trials.run(|seed| {
            let pem = PrefixExtendingMethod::new(
                BITS,
                8,
                step,
                16,
                Epsilon::new(4.0).expect("valid eps"),
            )
            .expect("valid pem");
            let (values, truth) = population(100_000, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xf00d);
            ncr(&pem.run(&values, &mut rng), &truth)
        });
        let levels = 1 + (BITS - 8) / step;
        t3.row(&[
            step.to_string(),
            levels.to_string(),
            format!("{:.2}", stats.mean),
        ]);
    }
    t3.print();
}
