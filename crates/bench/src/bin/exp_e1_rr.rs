//! Experiment E1 — §1.1's statistical toolkit on randomized response.
//!
//! Reproduces the tutorial's opening claims: Warner's randomized response
//! is unbiased; its estimator variance follows the closed form
//! `λ(1−λ)/(n(2p−1)²)`; and normal-approximation confidence intervals
//! achieve their nominal coverage. Prints error vs n, error vs ε, and CI
//! coverage.

use ldp_core::estimate::ConfidenceInterval;
use ldp_core::rr::BinaryRandomizedResponse;
use ldp_core::Epsilon;
use ldp_workloads::{ExperimentTable, Trials};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run_trial(eps: f64, n: usize, pi: f64, seed: u64) -> (f64, bool) {
    let rr = BinaryRandomizedResponse::new(Epsilon::new(eps).expect("valid eps"));
    let mut rng = StdRng::seed_from_u64(seed);
    let ones = (0..n)
        .filter(|&i| rr.randomize((i as f64) < pi * n as f64, &mut rng))
        .count();
    let est = rr.estimate_proportion(ones, n);
    let ci = ConfidenceInterval::normal_approx(est, rr.conditional_variance(n), 0.95);
    ((est - pi).abs(), ci.contains(pi))
}

fn main() {
    let pi = 0.3;
    let trials = Trials::new(50, 42);

    // --- Error vs population size (eps = 1). ---
    let mut t1 = ExperimentTable::new(
        "E1a: RR absolute error vs n (eps=1, true pi=0.3)",
        &["n", "mean |err|", "predicted sd", "ratio"],
    );
    for &n in &[1_000usize, 10_000, 100_000, 1_000_000] {
        let stats = trials.run(|seed| run_trial(1.0, n, pi, seed).0);
        let rr = BinaryRandomizedResponse::new(Epsilon::new(1.0).expect("valid eps"));
        let sd = rr.conditional_variance(n).sqrt();
        // E|err| of a Gaussian = sd * sqrt(2/pi).
        let predicted_mean_abs = sd * (2.0 / std::f64::consts::PI).sqrt();
        t1.row(&[
            n.to_string(),
            format!("{:.5}", stats.mean),
            format!("{:.5}", predicted_mean_abs),
            format!("{:.2}", stats.mean / predicted_mean_abs),
        ]);
    }
    t1.print();

    // --- Error vs epsilon (n = 100k). ---
    let mut t2 = ExperimentTable::new(
        "E1b: RR absolute error vs eps (n=100000)",
        &["eps", "mean |err|", "e^eps"],
    );
    for &eps in &[0.25, 0.5, 1.0, 2.0, 4.0] {
        let stats = trials.run(|seed| run_trial(eps, 100_000, pi, seed).0);
        t2.row(&[
            format!("{eps}"),
            format!("{:.5}", stats.mean),
            format!("{:.2}", eps.exp()),
        ]);
    }
    t2.print();

    // --- CI coverage. ---
    let mut t3 = ExperimentTable::new(
        "E1c: 95% CI coverage (should be ~0.95)",
        &["eps", "n", "coverage"],
    );
    let coverage_trials = Trials::new(200, 7);
    for &(eps, n) in &[(0.5, 10_000usize), (1.0, 10_000), (2.0, 1_000)] {
        let cover = coverage_trials.run(|seed| {
            if run_trial(eps, n, pi, seed).1 {
                1.0
            } else {
                0.0
            }
        });
        t3.row(&[
            format!("{eps}"),
            n.to_string(),
            format!("{:.3}", cover.mean),
        ]);
    }
    t3.print();
}
