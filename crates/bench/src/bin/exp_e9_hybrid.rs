//! Experiment E9 — the BLENDER hybrid model (Avent et al. 2017 shape).
//!
//! Reproduces the paper's headline: blending a small opt-in population
//! (under central DP) with the LDP majority dramatically improves
//! accuracy, approaching pure central DP as the opt-in fraction grows.
//!
//! Expected shape: MSE falls steeply from ρ=0 (pure LDP) and flattens
//! towards the central-DP floor; even ρ=1–5% captures most of the gain.

use ldp_analytics::hybrid::Blender;
use ldp_core::Epsilon;
use ldp_workloads::gen::{exact_counts, ZipfGenerator};
use ldp_workloads::{metrics, ExperimentTable, Trials};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let trials = Trials::new(5, 17);
    let d = 64u64;
    let n = 100_000;
    let eps = Epsilon::new(1.0).expect("valid eps");
    let zipf = ZipfGenerator::new(d, 1.1).expect("valid zipf");

    let mut t1 = ExperimentTable::new(
        "E9a: blended count MSE vs opt-in fraction (d=64, n=100k, eps=1)",
        &["opt-in", "empirical MSE", "analytical floor"],
    );
    for &rho in &[0.0, 0.01, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0] {
        let blender = Blender::new(d, eps, rho).expect("valid rho");
        let stats = trials.run(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let values = zipf.sample_n(n, &mut rng);
            let truth = exact_counts(&values, d);
            let est = blender.collect(&values, &mut rng);
            metrics::mse(&est.counts, &truth)
        });
        t1.row(&[
            format!("{:.0}%", rho * 100.0),
            format!("{:.0}", stats.mean),
            format!("{:.0}", blender.blended_variance(n)),
        ]);
    }
    t1.print();

    let mut t2 = ExperimentTable::new(
        "E9b: central weight assigned to the opt-in estimator",
        &["opt-in", "weight on central"],
    );
    for &rho in &[0.01, 0.05, 0.25] {
        let blender = Blender::new(d, eps, rho).expect("valid rho");
        let stats = trials.run(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let values = zipf.sample_n(n, &mut rng);
            blender.collect(&values, &mut rng).central_weight[0]
        });
        t2.row(&[format!("{:.0}%", rho * 100.0), format!("{:.3}", stats.mean)]);
    }
    t2.print();
}
