//! Experiment E3 — RAPPOR decoding quality (CCS 2014 Figs. 3–5 shape).
//!
//! The RAPPOR paper shows how many of the true top strings the decoder
//! detects as the population grows, and the precision of those
//! detections. Reproduced on a Zipf candidate population (the paper's own
//! simulations use synthetic Zipf/normal populations).
//!
//! Expected shape: detection recall rises steeply with n; precision stays
//! high (LASSO selection suppresses false positives); more cohorts help
//! at large candidate sets.

use ldp_rappor::{RapporAggregator, RapporClient, RapporParams};
use ldp_workloads::gen::ZipfGenerator;
use ldp_workloads::{ExperimentTable, Trials};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs one RAPPOR round with the paper's decoy setup: the population
/// draws from 20 true strings (Zipf), but the decoder is given 100
/// candidates — 80 of which are absent. Returns
/// (recall of the true top-10, precision = selected candidates that are
/// actually present).
fn run(n: usize, candidates: usize, cohorts: u32, seed: u64) -> (f64, f64) {
    let present = 20usize.min(candidates);
    let params = RapporParams::new(64, 2, cohorts, 0.25, 0.35, 0.65).expect("valid params");
    let zipf = ZipfGenerator::new(present as u64, 1.5).expect("valid zipf");
    let mut rng = StdRng::seed_from_u64(seed);
    let names: Vec<String> = (0..candidates)
        .map(|i| format!("url-{i}.example"))
        .collect();

    let mut agg = RapporAggregator::new(params.clone());
    for _ in 0..n {
        let v = zipf.sample(&mut rng) as usize;
        let mut client = RapporClient::with_random_cohort(params.clone(), &mut rng);
        agg.accumulate(&client.report(names[v].as_bytes(), &mut rng));
    }

    let candidate_refs: Vec<&[u8]> = names.iter().map(|s| s.as_bytes()).collect();
    let decoded = agg.decode(&candidate_refs);

    // True top-10 under Zipf(1.5) are items 0..10.
    let top_true: Vec<usize> = (0..10.min(present)).collect();
    // Count as "detected" only selections with non-trivial mass (the
    // paper thresholds at a significance level; we use 0.5% of n).
    let selected: Vec<usize> = decoded
        .iter()
        .filter(|d| d.selected && d.estimate > 0.005 * n as f64)
        .map(|d| d.candidate)
        .collect();
    let hits = top_true.iter().filter(|t| selected.contains(t)).count();
    let recall = hits as f64 / top_true.len() as f64;
    let legit = selected.iter().filter(|&&s| s < present).count();
    let precision = if selected.is_empty() {
        1.0
    } else {
        legit as f64 / selected.len() as f64
    };
    (recall, precision)
}

fn main() {
    let trials = Trials::new(5, 99);

    let mut t1 = ExperimentTable::new(
        "E3a: RAPPOR top-10 detection vs population (100 candidates, 8 cohorts)",
        &["n", "recall@10", "precision"],
    );
    for &n in &[2_000usize, 5_000, 10_000, 30_000, 100_000] {
        let recall = trials.run(|seed| run(n, 100, 8, seed).0);
        let precision = trials.run(|seed| run(n, 100, 8, seed + 5000).1);
        t1.row(&[
            n.to_string(),
            format!("{:.2}", recall.mean),
            format!("{:.2}", precision.mean),
        ]);
    }
    t1.print();

    let mut t2 = ExperimentTable::new(
        "E3b: cohort count effect (n=30000, 100 candidates)",
        &["cohorts", "recall@10"],
    );
    for &m in &[1u32, 4, 16, 64] {
        let recall = trials.run(|seed| run(30_000, 100, m, seed).0);
        t2.row(&[m.to_string(), format!("{:.2}", recall.mean)]);
    }
    t2.print();

    // Privacy accounting summary (the paper's Table 1 shape).
    let chrome = RapporParams::chrome_default(64).expect("valid params");
    let mut t3 = ExperimentTable::new(
        "E3c: privacy accounting (Chrome-default parameters)",
        &["quantity", "value"],
    );
    t3.row(&[
        "eps one report".into(),
        format!("{:.3}", chrome.epsilon_one_report()),
    ]);
    t3.row(&[
        "eps permanent (lifetime)".into(),
        format!("{:.3}", chrome.epsilon_permanent()),
    ]);
    t3.print();
}
