//! Frozen pre-batch-engine randomizers — the "old code" baselines the
//! batch-engine speedups in `BENCH_aggregate.json` are measured against.
//!
//! These are deliberately **not** re-exported from `ldp-core`: they are
//! byte-for-byte what the library's scalar paths did before geometric-skip
//! sampling landed, kept in one place so every bench compares against the
//! same old code. Do not "improve" them — any change here silently
//! re-bases the recorded speedup trajectory.

use ldp_apple::cms::{CmsProtocol, CmsReport};
use ldp_core::noise::sample_laplace;
use ldp_microsoft::dbitflip::{DBitFlip, DBitReport};
use ldp_sketch::BitVec;
use rand::seq::index::sample;
use rand::{Rng, RngCore};

/// The pre-batch-engine unary (SUE/OUE) randomizer: one Bernoulli draw
/// per bit through a `dyn RngCore` vtable, materializing a fresh
/// `BitVec` per report.
pub fn legacy_unary_randomize(d: u64, p: f64, q: f64, value: u64, rng: &mut dyn RngCore) -> BitVec {
    let mut bits = BitVec::zeros(d as usize);
    for i in 0..d as usize {
        let keep = if i as u64 == value { p } else { q };
        if rng.gen_bool(keep) {
            bits.set(i, true);
        }
    }
    bits
}

/// The pre-batch-engine THE randomizer: `d` Laplace draws per report,
/// thresholded at θ, through `dyn RngCore`.
pub fn legacy_the_randomize(
    d: u64,
    scale: f64,
    theta: f64,
    value: u64,
    rng: &mut dyn RngCore,
) -> BitVec {
    let mut bits = BitVec::zeros(d as usize);
    for i in 0..d {
        let base = if i == value { 1.0 } else { 0.0 };
        if base + sample_laplace(scale, rng) > theta {
            bits.set(i as usize, true);
        }
    }
    bits
}

/// The pre-batch-engine Apple CMS randomizer: a fresh `m`-length ±1 row
/// per report and one Bernoulli draw per coordinate through `dyn
/// RngCore`. Uses the live protocol's public hash family so the reports
/// stay decodable by today's server.
pub fn legacy_cms_randomize(proto: &CmsProtocol, value: u64, rng: &mut dyn RngCore) -> CmsReport {
    let (k, m) = proto.shape();
    let row = rng.gen_range(0..k);
    let bucket = proto.bucket(row, value);
    let mut bits = vec![-1i8; m];
    bits[bucket] = 1;
    for b in bits.iter_mut() {
        if rng.gen_bool(proto.flip_prob()) {
            *b = -*b;
        }
    }
    CmsReport {
        row: row as u32,
        bits,
    }
}

/// The pre-batch-engine Microsoft dBitFlip randomizer: a partial
/// Fisher–Yates over a freshly allocated `O(k)` pool per report
/// (`rand::seq::index::sample`), then one Bernoulli draw per assigned
/// bucket through `dyn RngCore`, materializing both report vectors.
pub fn legacy_dbitflip_randomize(
    mech: &DBitFlip,
    value_bucket: u32,
    rng: &mut dyn RngCore,
) -> DBitReport {
    let mut buckets: Vec<u32> = sample(
        rng,
        mech.buckets() as usize,
        mech.bits_per_device() as usize,
    )
    .into_iter()
    .map(|i| i as u32)
    .collect();
    buckets.sort_unstable();
    let p = mech.keep_prob();
    let bits = buckets
        .iter()
        .map(|&j| {
            let truth = j == value_bucket;
            if rng.gen_bool(p) {
                truth
            } else {
                !truth
            }
        })
        .collect();
    DBitReport { buckets, bits }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The frozen baselines must stay distribution-correct (they are the
    /// denominator of every recorded speedup): per-bit 1-rates match the
    /// (p, q) channel.
    #[test]
    fn legacy_paths_match_channel_rates() {
        let (d, p, q) = (16u64, 0.7, 0.2);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 40_000;
        let mut counts = vec![0u64; d as usize];
        for _ in 0..n {
            legacy_unary_randomize(d, p, q, 5, &mut rng).accumulate_into(&mut counts);
        }
        for (i, &c) in counts.iter().enumerate() {
            let rate = c as f64 / n as f64;
            let expected = if i == 5 { p } else { q };
            assert!((rate - expected).abs() < 0.02, "bit {i}: {rate}");
        }
    }

    /// The frozen Apple baseline must stay decodable by today's server:
    /// estimates from legacy reports remain unbiased.
    #[test]
    fn legacy_cms_reports_decode_correctly() {
        use ldp_core::Epsilon;
        let proto = CmsProtocol::new(8, 128, Epsilon::new(4.0).unwrap(), 5);
        let mut rng = StdRng::seed_from_u64(7);
        let mut server = proto.new_server();
        let n = 20_000;
        for _ in 0..n {
            server.accumulate(&legacy_cms_randomize(&proto, 3, &mut rng));
        }
        let est = server.estimate(3);
        assert!(
            (est - n as f64).abs() < n as f64 * 0.1,
            "est={est} truth={n}"
        );
    }

    /// Same for the frozen Microsoft baseline.
    #[test]
    fn legacy_dbitflip_reports_decode_correctly() {
        use ldp_core::Epsilon;
        let mech = DBitFlip::new(16, 4, Epsilon::new(2.0).unwrap()).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let mut agg = mech.new_aggregator();
        let n = 30_000;
        for u in 0..n {
            agg.accumulate(&legacy_dbitflip_randomize(&mech, (u % 4) as u32, &mut rng));
        }
        let est = agg.estimate();
        let sd = mech.count_variance(n).sqrt();
        for (j, &e) in est.iter().enumerate().take(4) {
            assert!(
                (e - n as f64 / 4.0).abs() < 5.0 * sd,
                "bucket {j}: est={e} sd={sd}"
            );
        }
    }
}
