//! Frozen pre-batch-engine randomizers — the "old code" baselines the
//! batch-engine speedups in `BENCH_aggregate.json` are measured against.
//!
//! These are deliberately **not** re-exported from `ldp-core`: they are
//! byte-for-byte what the library's scalar paths did before geometric-skip
//! sampling landed, kept in one place so every bench compares against the
//! same old code. Do not "improve" them — any change here silently
//! re-bases the recorded speedup trajectory.

use ldp_core::noise::sample_laplace;
use ldp_sketch::BitVec;
use rand::{Rng, RngCore};

/// The pre-batch-engine unary (SUE/OUE) randomizer: one Bernoulli draw
/// per bit through a `dyn RngCore` vtable, materializing a fresh
/// `BitVec` per report.
pub fn legacy_unary_randomize(d: u64, p: f64, q: f64, value: u64, rng: &mut dyn RngCore) -> BitVec {
    let mut bits = BitVec::zeros(d as usize);
    for i in 0..d as usize {
        let keep = if i as u64 == value { p } else { q };
        if rng.gen_bool(keep) {
            bits.set(i, true);
        }
    }
    bits
}

/// The pre-batch-engine THE randomizer: `d` Laplace draws per report,
/// thresholded at θ, through `dyn RngCore`.
pub fn legacy_the_randomize(
    d: u64,
    scale: f64,
    theta: f64,
    value: u64,
    rng: &mut dyn RngCore,
) -> BitVec {
    let mut bits = BitVec::zeros(d as usize);
    for i in 0..d {
        let base = if i == value { 1.0 } else { 0.0 };
        if base + sample_laplace(scale, rng) > theta {
            bits.set(i as usize, true);
        }
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The frozen baselines must stay distribution-correct (they are the
    /// denominator of every recorded speedup): per-bit 1-rates match the
    /// (p, q) channel.
    #[test]
    fn legacy_paths_match_channel_rates() {
        let (d, p, q) = (16u64, 0.7, 0.2);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 40_000;
        let mut counts = vec![0u64; d as usize];
        for _ in 0..n {
            legacy_unary_randomize(d, p, q, 5, &mut rng).accumulate_into(&mut counts);
        }
        for (i, &c) in counts.iter().enumerate() {
            let rate = c as f64 / n as f64;
            let expected = if i == 5 { p } else { q };
            assert!((rate - expected).abs() < 0.02, "bit {i}: {rate}");
        }
    }
}
