//! Frozen "old code" baselines the speedups in `BENCH_aggregate.json`
//! are measured against: the pre-batch-engine randomizers and the
//! pre-decode-kernel decode paths.
//!
//! These are deliberately **not** re-exported from the library crates:
//! they are byte-for-byte what the scalar randomize paths did before
//! geometric-skip sampling landed, and what the decode paths did before
//! the tiled-FWHT / cached-spectrum / sparse-LASSO / batched-Laplace
//! kernels landed — kept in one place so every bench compares against
//! the same old code. Do not "improve" them — any change here silently
//! re-bases the recorded speedup trajectory.

use ldp_apple::cms::{CmsProtocol, CmsReport};
use ldp_apple::hcms::HcmsProtocol;
use ldp_core::noise::sample_laplace;
use ldp_microsoft::dbitflip::{DBitFlip, DBitReport};
use ldp_rappor::{DecodedCandidate, RapporAggregator};
use ldp_sketch::linalg::{lasso, least_squares, Matrix};
use ldp_sketch::{fwht_reference, BitVec, BloomFilter};
use rand::seq::index::sample;
use rand::{Rng, RngCore};

/// The pre-batch-engine unary (SUE/OUE) randomizer: one Bernoulli draw
/// per bit through a `dyn RngCore` vtable, materializing a fresh
/// `BitVec` per report.
pub fn legacy_unary_randomize(d: u64, p: f64, q: f64, value: u64, rng: &mut dyn RngCore) -> BitVec {
    let mut bits = BitVec::zeros(d as usize);
    for i in 0..d as usize {
        let keep = if i as u64 == value { p } else { q };
        if rng.gen_bool(keep) {
            bits.set(i, true);
        }
    }
    bits
}

/// The pre-batch-engine THE randomizer: `d` Laplace draws per report,
/// thresholded at θ, through `dyn RngCore`.
pub fn legacy_the_randomize(
    d: u64,
    scale: f64,
    theta: f64,
    value: u64,
    rng: &mut dyn RngCore,
) -> BitVec {
    let mut bits = BitVec::zeros(d as usize);
    for i in 0..d {
        let base = if i == value { 1.0 } else { 0.0 };
        if base + sample_laplace(scale, rng) > theta {
            bits.set(i as usize, true);
        }
    }
    bits
}

/// The pre-batch-engine Apple CMS randomizer: a fresh `m`-length ±1 row
/// per report and one Bernoulli draw per coordinate through `dyn
/// RngCore`. Uses the live protocol's public hash family so the reports
/// stay decodable by today's server.
pub fn legacy_cms_randomize(proto: &CmsProtocol, value: u64, rng: &mut dyn RngCore) -> CmsReport {
    let (k, m) = proto.shape();
    let row = rng.gen_range(0..k);
    let bucket = proto.bucket(row, value);
    let mut bits = vec![-1i8; m];
    bits[bucket] = 1;
    for b in bits.iter_mut() {
        if rng.gen_bool(proto.flip_prob()) {
            *b = -*b;
        }
    }
    CmsReport {
        row: row as u32,
        bits,
    }
}

/// The pre-batch-engine Microsoft dBitFlip randomizer: a partial
/// Fisher–Yates over a freshly allocated `O(k)` pool per report
/// (`rand::seq::index::sample`), then one Bernoulli draw per assigned
/// bucket through `dyn RngCore`, materializing both report vectors.
pub fn legacy_dbitflip_randomize(
    mech: &DBitFlip,
    value_bucket: u32,
    rng: &mut dyn RngCore,
) -> DBitReport {
    let mut buckets: Vec<u32> = sample(
        rng,
        mech.buckets() as usize,
        mech.bits_per_device() as usize,
    )
    .into_iter()
    .map(|i| i as u32)
    .collect();
    buckets.sort_unstable();
    let p = mech.keep_prob();
    let bits = buckets
        .iter()
        .map(|&j| {
            let truth = j == value_bucket;
            if rng.gen_bool(p) {
                truth
            } else {
                !truth
            }
        })
        .collect();
    DBitReport { buckets, bits }
}

/// The pre-decode-kernel HCMS point query: rebuilds the full bucket
/// matrix — `k` radix-2 reference FWHTs over the debiased spectrum —
/// for this **one** query, exactly as `HcmsServer::estimate` did before
/// the cached-spectrum decode landed. `spectrum`, `c_eps`, and `n` come
/// from the live server (`spectrum()`, `debias_constant()`,
/// `reports()`), so the baseline decodes today's state.
pub fn legacy_hcms_estimate(
    proto: &HcmsProtocol,
    spectrum: &[i64],
    c_eps: f64,
    n: usize,
    value: u64,
) -> f64 {
    let (k, m) = proto.shape();
    let mut matrix = vec![0.0; k * m];
    let mut row_buf = vec![0.0; m];
    for j in 0..k {
        for (dst, &s) in row_buf.iter_mut().zip(&spectrum[j * m..(j + 1) * m]) {
            *dst = c_eps * s as f64;
        }
        fwht_reference(&mut row_buf);
        for l in 0..m {
            matrix[j * m + l] = k as f64 * row_buf[l];
        }
    }
    let mf = m as f64;
    let mean_cell: f64 = (0..k)
        .map(|j| matrix[j * m + proto.bucket(j, value)])
        .sum::<f64>()
        / k as f64;
    (mf / (mf - 1.0)) * (mean_cell - n as f64 / mf)
}

/// The pre-decode-kernel SHE randomize→accumulate loop: one fresh
/// `Vec<f64>` per report, one `sample_laplace` (libm `ln`) draw per
/// coordinate, added into `sums` coordinate-wise — byte-for-byte the
/// scalar path before the batched inverse-CDF Laplace block landed.
pub fn legacy_she_randomize_accumulate(
    d: u64,
    scale: f64,
    values: &[u64],
    rng: &mut dyn RngCore,
    sums: &mut [f64],
) {
    for &v in values {
        let report: Vec<f64> = (0..d)
            .map(|i| {
                let base = if i == v { 1.0 } else { 0.0 };
                base + sample_laplace(scale, rng)
            })
            .collect();
        for (s, r) in sums.iter_mut().zip(&report) {
            *s += r;
        }
    }
}

/// The pre-sparse-LASSO RAPPOR decode: materializes the dense
/// `m·k × candidates` 0/1 design matrix and runs the dense
/// coordinate-descent LASSO (every sweep touches all `m·k` rows of
/// every column), then the same support-restricted OLS — byte-for-byte
/// the pipeline `RapporAggregator::decode` ran before the sparse
/// active-set path landed. Same design matrix, same `λ`, same
/// tolerances, so the two decodes are statistically equivalent.
pub fn legacy_rappor_decode(agg: &RapporAggregator, candidates: &[&[u8]]) -> Vec<DecodedCandidate> {
    let params = agg.params();
    let k = params.bloom_bits();
    let m = params.cohorts() as usize;
    let rows = m * k;
    let n_cand = candidates.len();
    if n_cand == 0 {
        return Vec::new();
    }

    let mut x = Matrix::zeros(rows, n_cand);
    for (s, cand) in candidates.iter().enumerate() {
        for i in 0..m {
            let sig = BloomFilter::signature(k, params.hashes(), i as u32, cand);
            for j in sig.ones() {
                x.set(i * k + j, s, 1.0);
            }
        }
    }

    let t = agg.debiased_bit_counts();
    let mut y = Vec::with_capacity(rows);
    for cohort in &t {
        y.extend_from_slice(cohort);
    }

    let (p_star, q_star) = params.effective_channel();
    let avg_cohort = agg.reports() as f64 / m as f64;
    let noise_sd = (avg_cohort * q_star * (1.0 - q_star)).sqrt() / (q_star - p_star);
    let lambda = noise_sd * (2.0 * (n_cand.max(2) as f64).ln()).sqrt();
    let selected_coefs = lasso(&x, &y, lambda, true, 200, 1e-6);
    let support: Vec<usize> = (0..n_cand).filter(|&s| selected_coefs[s] > 1e-9).collect();

    let mut out: Vec<DecodedCandidate> = (0..n_cand)
        .map(|s| DecodedCandidate {
            candidate: s,
            estimate: 0.0,
            selected: false,
        })
        .collect();
    if support.is_empty() {
        return out;
    }

    let mut xs = Matrix::zeros(rows, support.len());
    for (c_new, &s) in support.iter().enumerate() {
        for r in 0..rows {
            xs.set(r, c_new, x.get(r, s));
        }
    }
    let coefs = least_squares(&xs, &y);
    for (c_new, &s) in support.iter().enumerate() {
        out[s].selected = true;
        out[s].estimate = coefs[c_new] * m as f64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The frozen baselines must stay distribution-correct (they are the
    /// denominator of every recorded speedup): per-bit 1-rates match the
    /// (p, q) channel.
    #[test]
    fn legacy_paths_match_channel_rates() {
        let (d, p, q) = (16u64, 0.7, 0.2);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 40_000;
        let mut counts = vec![0u64; d as usize];
        for _ in 0..n {
            legacy_unary_randomize(d, p, q, 5, &mut rng).accumulate_into(&mut counts);
        }
        for (i, &c) in counts.iter().enumerate() {
            let rate = c as f64 / n as f64;
            let expected = if i == 5 { p } else { q };
            assert!((rate - expected).abs() < 0.02, "bit {i}: {rate}");
        }
    }

    /// The frozen Apple baseline must stay decodable by today's server:
    /// estimates from legacy reports remain unbiased.
    #[test]
    fn legacy_cms_reports_decode_correctly() {
        use ldp_core::Epsilon;
        let proto = CmsProtocol::new(8, 128, Epsilon::new(4.0).unwrap(), 5);
        let mut rng = StdRng::seed_from_u64(7);
        let mut server = proto.new_server();
        let n = 20_000;
        for _ in 0..n {
            server.accumulate(&legacy_cms_randomize(&proto, 3, &mut rng));
        }
        let est = server.estimate(3);
        assert!(
            (est - n as f64).abs() < n as f64 * 0.1,
            "est={est} truth={n}"
        );
    }

    /// The frozen HCMS per-query decode must agree bit-for-bit with the
    /// library's cached-spectrum decode: both invert the same debiased
    /// spectrum (the tiled FWHT is bit-identical to the reference
    /// butterfly), so any divergence is a broken baseline.
    #[test]
    fn legacy_hcms_estimate_bit_identical_to_cached_decode() {
        use ldp_core::Epsilon;
        let proto = HcmsProtocol::new(8, 256, Epsilon::new(4.0).unwrap(), 5);
        let mut rng = StdRng::seed_from_u64(13);
        let mut server = proto.new_server();
        for i in 0..5_000u64 {
            server.accumulate(&proto.randomize(i % 40, &mut rng));
        }
        let decoded = server.decode();
        for v in 0..64u64 {
            let old = legacy_hcms_estimate(
                &proto,
                server.spectrum(),
                server.debias_constant(),
                server.reports(),
                v,
            );
            assert_eq!(
                old.to_bits(),
                decoded.estimate(v).to_bits(),
                "value {v}: legacy {old} vs cached {}",
                decoded.estimate(v)
            );
        }
    }

    /// The frozen SHE baseline must stay distribution-correct: sums
    /// recover the planted one-hot counts within noise.
    #[test]
    fn legacy_she_sums_recover_counts() {
        let (d, scale) = (32u64, 2.0);
        let mut rng = StdRng::seed_from_u64(5);
        let n = 4_000usize;
        let values: Vec<u64> = (0..n).map(|i| (i % 4) as u64).collect();
        let mut sums = vec![0.0; d as usize];
        legacy_she_randomize_accumulate(d, scale, &values, &mut rng, &mut sums);
        // Var of each sum = n · 2·scale² → sd ≈ 179 at these parameters.
        let sd = (n as f64 * 2.0 * scale * scale).sqrt();
        for (i, &s) in sums.iter().enumerate() {
            let expected = if i < 4 { n as f64 / 4.0 } else { 0.0 };
            assert!(
                (s - expected).abs() < 5.0 * sd,
                "coord {i}: sum={s} expected={expected}"
            );
        }
    }

    /// The frozen dense RAPPOR decode must keep recovering planted
    /// candidates (it is the denominator of `rappor_lasso_speedup`).
    #[test]
    fn legacy_rappor_decode_recovers_planted_candidates() {
        use ldp_rappor::{RapporClient, RapporParams};
        let params = RapporParams::new(64, 2, 8, 0.25, 0.35, 0.65).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let mut agg = RapporAggregator::new(params.clone());
        for i in 0..6_000usize {
            let word: &[u8] = if i % 3 == 0 { b"heavy-a" } else { b"heavy-b" };
            let mut client = RapporClient::with_random_cohort(params.clone(), &mut rng);
            agg.accumulate(&client.report(word, &mut rng));
        }
        let candidates: Vec<&[u8]> = vec![b"heavy-a", b"heavy-b", b"absent-1", b"absent-2"];
        let decoded = legacy_rappor_decode(&agg, &candidates);
        assert!(decoded[0].selected && decoded[1].selected, "{decoded:?}");
        assert!(
            (decoded[0].estimate - 2_000.0).abs() < 800.0,
            "heavy-a: {}",
            decoded[0].estimate
        );
        assert!(
            (decoded[1].estimate - 4_000.0).abs() < 900.0,
            "heavy-b: {}",
            decoded[1].estimate
        );
    }

    /// Same for the frozen Microsoft baseline.
    #[test]
    fn legacy_dbitflip_reports_decode_correctly() {
        use ldp_core::Epsilon;
        let mech = DBitFlip::new(16, 4, Epsilon::new(2.0).unwrap()).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let mut agg = mech.new_aggregator();
        let n = 30_000;
        for u in 0..n {
            agg.accumulate(&legacy_dbitflip_randomize(&mech, (u % 4) as u32, &mut rng));
        }
        let est = agg.estimate();
        let sd = mech.count_variance(n).sqrt();
        for (j, &e) in est.iter().enumerate().take(4) {
            assert!(
                (e - n as f64 / 4.0).abs() < 5.0 * sd,
                "bucket {j}: est={e} sd={sd}"
            );
        }
    }
}
