//! Joint distributions from independent RAPPOR reports: the association
//! half of Fanti–Pihur–Erlingsson (PETS 2016).
//!
//! Chrome wanted *associations* — e.g. the joint distribution of
//! (homepage, browser language) — but each variable is collected through
//! its own RAPPOR report. Debiasing recovers the two marginals, not the
//! joint. The paper's answer is **expectation–maximization** over the
//! known privatization channel:
//!
//! * E-step: for each user's pair of perturbed reports, compute the
//!   posterior over candidate pairs `(a, b)` given the current joint
//!   estimate and the per-report likelihoods
//!   `Pr[report | candidate]` (a product over bits of `q*`/`p*` terms).
//! * M-step: the new joint estimate is the average posterior.
//!
//! EM is the right tool precisely because the channel is known exactly —
//! the same property that makes debiasing possible makes likelihoods
//! computable. This module implements the generic two-variable EM
//! decoder on top of `ldp-rappor`'s client.

use crate::client::RapporReport;
use crate::params::RapporParams;
use ldp_sketch::{BitVec, BloomFilter};

/// The estimated joint distribution over two candidate lists.
#[derive(Debug, Clone)]
pub struct JointEstimate {
    /// `probabilities[a][b]` = estimated P(first = a ∧ second = b).
    pub probabilities: Vec<Vec<f64>>,
    /// EM iterations actually run.
    pub iterations: usize,
    /// Final log-likelihood (monotone non-decreasing across iterations).
    pub log_likelihood: f64,
}

impl JointEstimate {
    /// Marginal over the first variable.
    pub fn marginal_first(&self) -> Vec<f64> {
        self.probabilities
            .iter()
            .map(|row| row.iter().sum())
            .collect()
    }

    /// Marginal over the second variable.
    pub fn marginal_second(&self) -> Vec<f64> {
        let cols = self.probabilities.first().map_or(0, |r| r.len());
        (0..cols)
            .map(|b| self.probabilities.iter().map(|row| row[b]).sum())
            .collect()
    }
}

/// Two-variable EM association decoder.
#[derive(Debug, Clone)]
pub struct AssociationDecoder {
    params: RapporParams,
    max_iterations: usize,
    tolerance: f64,
}

impl AssociationDecoder {
    /// Creates a decoder running at most `max_iterations` EM sweeps,
    /// stopping early when the joint changes by less than `tolerance`
    /// (L1).
    pub fn new(params: RapporParams, max_iterations: usize, tolerance: f64) -> Self {
        Self {
            params,
            max_iterations,
            tolerance,
        }
    }

    /// Per-bit log-likelihood of one report given a candidate's
    /// signature, under the composed PRR∘IRR channel.
    fn report_log_likelihood(&self, report: &RapporReport, signature: &BitVec) -> f64 {
        let (p_star, q_star) = self.params.effective_channel();
        let mut ll = 0.0;
        for i in 0..report.bits.len() {
            let sig = signature.get(i);
            let got = report.bits.get(i);
            let pr_one = if sig { q_star } else { p_star };
            let pr = if got { pr_one } else { 1.0 - pr_one };
            ll += pr.max(1e-12).ln();
        }
        ll
    }

    /// Runs EM over paired reports. `pairs[(u)]` holds user `u`'s two
    /// reports; `cands_a` / `cands_b` are the candidate strings for each
    /// variable.
    ///
    /// # Panics
    /// Panics if either candidate list is empty or reports disagree with
    /// the parameter shape.
    pub fn decode(
        &self,
        pairs: &[(RapporReport, RapporReport)],
        cands_a: &[&[u8]],
        cands_b: &[&[u8]],
    ) -> JointEstimate {
        assert!(
            !cands_a.is_empty() && !cands_b.is_empty(),
            "need candidates"
        );
        let (na, nb) = (cands_a.len(), cands_b.len());
        let k = self.params.bloom_bits();
        let h = self.params.hashes();

        // Precompute per-user log-likelihood tables against candidates.
        // Signatures depend on the report's cohort.
        let mut ll_a: Vec<Vec<f64>> = Vec::with_capacity(pairs.len());
        let mut ll_b: Vec<Vec<f64>> = Vec::with_capacity(pairs.len());
        for (ra, rb) in pairs {
            let row_a = cands_a
                .iter()
                .map(|c| {
                    let sig = BloomFilter::signature(k, h, ra.cohort, c);
                    self.report_log_likelihood(ra, &sig)
                })
                .collect();
            let row_b = cands_b
                .iter()
                .map(|c| {
                    let sig = BloomFilter::signature(k, h, rb.cohort, c);
                    self.report_log_likelihood(rb, &sig)
                })
                .collect();
            ll_a.push(row_a);
            ll_b.push(row_b);
        }

        // EM on the joint.
        let mut joint = vec![vec![1.0 / (na * nb) as f64; nb]; na];
        let mut iterations = 0;
        let mut log_likelihood = f64::NEG_INFINITY;
        for iter in 0..self.max_iterations {
            iterations = iter + 1;
            let mut next = vec![vec![0.0f64; nb]; na];
            let mut total_ll = 0.0;
            for u in 0..pairs.len() {
                // Posterior over (a, b): prior * exp(ll_a + ll_b), normalized.
                // Work in log space with a max-shift for stability.
                let mut max_log = f64::NEG_INFINITY;
                for a in 0..na {
                    for b in 0..nb {
                        if joint[a][b] > 0.0 {
                            let l = joint[a][b].ln() + ll_a[u][a] + ll_b[u][b];
                            if l > max_log {
                                max_log = l;
                            }
                        }
                    }
                }
                let mut denom = 0.0;
                let mut post = vec![vec![0.0f64; nb]; na];
                for a in 0..na {
                    for b in 0..nb {
                        if joint[a][b] > 0.0 {
                            let w = (joint[a][b].ln() + ll_a[u][a] + ll_b[u][b] - max_log).exp();
                            post[a][b] = w;
                            denom += w;
                        }
                    }
                }
                total_ll += max_log + denom.ln();
                for a in 0..na {
                    for b in 0..nb {
                        next[a][b] += post[a][b] / denom;
                    }
                }
            }
            let n = pairs.len().max(1) as f64;
            let mut delta = 0.0;
            for a in 0..na {
                for b in 0..nb {
                    next[a][b] /= n;
                    delta += (next[a][b] - joint[a][b]).abs();
                }
            }
            joint = next;
            log_likelihood = total_ll;
            if delta < self.tolerance {
                break;
            }
        }
        JointEstimate {
            probabilities: joint,
            iterations,
            log_likelihood,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::RapporClient;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params() -> RapporParams {
        // One-time RAPPOR (f = 0) keeps the EM signal strong in tests.
        RapporParams::new(32, 2, 4, 0.0, 0.25, 0.75).unwrap()
    }

    /// Population with a strong association: homepage "search" implies
    /// language "en" (90%), homepage "portal" implies "de" (90%).
    fn collect_pairs(n: usize, seed: u64) -> Vec<(RapporReport, RapporReport)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = params();
        (0..n)
            .map(|i| {
                let (home, lang): (&[u8], &[u8]) = if i % 2 == 0 {
                    (b"search", if i % 20 < 18 { b"en" } else { b"de" })
                } else {
                    (b"portal", if i % 20 < 19 { b"de" } else { b"en" })
                };
                let mut c1 = RapporClient::with_random_cohort(p.clone(), &mut rng);
                let mut c2 = RapporClient::with_random_cohort(p.clone(), &mut rng);
                (c1.report(home, &mut rng), c2.report(lang, &mut rng))
            })
            .collect()
    }

    #[test]
    fn em_recovers_association() {
        let decoder = AssociationDecoder::new(params(), 40, 1e-6);
        let pairs = collect_pairs(4000, 1);
        let est = decoder.decode(&pairs, &[b"search", b"portal"], &[b"en", b"de"]);
        // True joint ≈ [[0.45, 0.05], [0.025, 0.475]].
        let p = &est.probabilities;
        assert!(p[0][0] > 0.3, "search∧en: {}", p[0][0]);
        assert!(p[1][1] > 0.3, "portal∧de: {}", p[1][1]);
        assert!(p[0][0] > 3.0 * p[0][1], "search→en association lost: {p:?}");
        assert!(p[1][1] > 3.0 * p[1][0], "portal→de association lost: {p:?}");
        // Joint sums to 1.
        let total: f64 = p.iter().flatten().sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn marginals_match_population() {
        let decoder = AssociationDecoder::new(params(), 40, 1e-6);
        let pairs = collect_pairs(4000, 2);
        let est = decoder.decode(&pairs, &[b"search", b"portal"], &[b"en", b"de"]);
        let ma = est.marginal_first();
        assert!((ma[0] - 0.5).abs() < 0.1, "P(search)={}", ma[0]);
        let mb = est.marginal_second();
        // P(en) = 0.5*0.9 + 0.5*0.05 = 0.475.
        assert!((mb[0] - 0.475).abs() < 0.12, "P(en)={}", mb[0]);
    }

    #[test]
    fn em_likelihood_improves() {
        let decoder_1 = AssociationDecoder::new(params(), 1, 0.0);
        let decoder_20 = AssociationDecoder::new(params(), 20, 0.0);
        let pairs = collect_pairs(800, 3);
        let e1 = decoder_1.decode(&pairs, &[b"search", b"portal"], &[b"en", b"de"]);
        let e20 = decoder_20.decode(&pairs, &[b"search", b"portal"], &[b"en", b"de"]);
        assert!(
            e20.log_likelihood >= e1.log_likelihood,
            "EM must not decrease likelihood"
        );
        assert_eq!(e20.iterations, 20);
    }

    #[test]
    #[should_panic(expected = "need candidates")]
    fn empty_candidates_panic() {
        let decoder = AssociationDecoder::new(params(), 5, 1e-6);
        decoder.decode(&[], &[], &[b"x"]);
    }
}
