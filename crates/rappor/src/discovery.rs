//! Unknown-dictionary discovery: learning *which strings exist*, not just
//! how frequent known candidates are.
//!
//! RAPPOR's regression decoder needs a candidate dictionary. Fanti, Pihur
//! and Erlingsson (PETS 2016) removed that requirement by having clients
//! additionally report string *fragments* (n-grams at known offsets); the
//! server finds frequent fragments per position, forms candidate strings
//! from their cross product, and verifies the candidates with a standard
//! frequency oracle. This module reproduces that two-phase design:
//!
//! * **Phase 1 (fragments)** — each client in the first half of the
//!   population is assigned one fragment position and reports the fragment
//!   through a Hadamard-response oracle over the fragment alphabet
//!   (O(1) client work, exactly the regime the original paper targets).
//! * **Phase 2 (verification)** — candidates are the capped cross product
//!   of frequent fragments; clients in the second half report their full
//!   string's index in the candidate list (or a reserved "other" bucket)
//!   through OLH, giving unbiased frequency estimates for every candidate.
//!
//! Strings are normalized to a 40-symbol alphabet (`a–z`, `0–9`, `.`,
//! `-`, `_`, padding) so the fragment domain stays small enough for exact
//! spectra; the original deployment used Bloom-filtered bigrams instead —
//! the substitution keeps the discovery logic identical while making the
//! reproduction self-contained.

use ldp_core::fo::{FoAggregator, FrequencyOracle, HadamardResponse, OptimizedLocalHashing};
use ldp_core::{Epsilon, Error, Result};
use rand::Rng;

/// The normalization alphabet: index 0..39.
const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789.-_";
/// Padding symbol index (strings shorter than `string_len`).
const PAD: u64 = 39;
/// Alphabet size including padding.
const RADIX: u64 = 40;

/// Configuration for [`NGramDiscovery`].
#[derive(Debug, Clone)]
pub struct DiscoveryConfig {
    /// Fixed string length (longer inputs are truncated, shorter padded).
    pub string_len: usize,
    /// Fragment length in symbols (the "n" of the n-gram).
    pub fragment_len: usize,
    /// Privacy budget per reporting user (each user reports once).
    pub epsilon: Epsilon,
    /// How many top fragments to keep per position.
    pub fragments_per_position: usize,
    /// Cap on the number of assembled candidate strings.
    pub max_candidates: usize,
}

impl DiscoveryConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// Rejects zero lengths, fragment lengths that do not divide the
    /// string length, and fragment domains above 2^20 (the exact-spectrum
    /// limit).
    pub fn validate(&self) -> Result<()> {
        if self.string_len == 0 || self.fragment_len == 0 {
            return Err(Error::InvalidParameter("lengths must be positive".into()));
        }
        if !self.string_len.is_multiple_of(self.fragment_len) {
            return Err(Error::InvalidParameter(format!(
                "fragment_len {} must divide string_len {}",
                self.fragment_len, self.string_len
            )));
        }
        let domain = (RADIX as f64).powi(self.fragment_len as i32);
        if domain > (1u64 << 20) as f64 {
            return Err(Error::InvalidParameter(format!(
                "fragment domain {domain} too large; use fragment_len <= 3"
            )));
        }
        if self.fragments_per_position == 0 || self.max_candidates == 0 {
            return Err(Error::InvalidParameter(
                "candidate caps must be positive".into(),
            ));
        }
        Ok(())
    }

    fn positions(&self) -> usize {
        self.string_len / self.fragment_len
    }

    fn fragment_domain(&self) -> u64 {
        RADIX.pow(self.fragment_len as u32)
    }
}

/// A discovered string with its estimated population count.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscoveredString {
    /// The recovered (normalized) string.
    pub value: String,
    /// Estimated number of users holding it.
    pub estimate: f64,
}

/// Two-phase unknown-dictionary discovery.
#[derive(Debug, Clone)]
pub struct NGramDiscovery {
    config: DiscoveryConfig,
}

/// Maps a byte to its alphabet index (unknown bytes fold onto `-`).
fn symbol(b: u8) -> u64 {
    match b {
        b'a'..=b'z' => (b - b'a') as u64,
        b'A'..=b'Z' => (b - b'A') as u64,
        b'0'..=b'9' => 26 + (b - b'0') as u64,
        b'.' => 36,
        b'-' => 37,
        b'_' => 38,
        _ => 37,
    }
}

/// Normalizes a string to exactly `len` symbol indices.
fn normalize(s: &[u8], len: usize) -> Vec<u64> {
    let mut out: Vec<u64> = s.iter().take(len).map(|&b| symbol(b)).collect();
    out.resize(len, PAD);
    out
}

/// Packs `fragment_len` symbols into a single domain value.
fn pack(symbols: &[u64]) -> u64 {
    symbols.iter().fold(0, |acc, &s| acc * RADIX + s)
}

/// Unpacks a fragment value back into characters.
fn unpack(mut v: u64, fragment_len: usize) -> String {
    let mut chars = vec![0u8; fragment_len];
    for i in (0..fragment_len).rev() {
        let s = (v % RADIX) as usize;
        chars[i] = if s == PAD as usize { b'*' } else { ALPHABET[s] };
        v /= RADIX;
    }
    String::from_utf8(chars).expect("alphabet is ASCII")
}

impl NGramDiscovery {
    /// Creates the discovery protocol.
    ///
    /// # Errors
    /// Propagates [`DiscoveryConfig::validate`] errors.
    pub fn new(config: DiscoveryConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self { config })
    }

    /// Runs both phases over a population of strings, consuming each
    /// user's single report. Returns discovered strings sorted by
    /// estimated count, descending.
    ///
    /// The population is split: even indices run phase 1 (fragments), odd
    /// indices run phase 2 (verification), mirroring the disjoint user
    /// groups of the original protocol.
    pub fn run<R: Rng>(&self, population: &[&[u8]], rng: &mut R) -> Vec<DiscoveredString> {
        let cfg = &self.config;
        let positions = cfg.positions();
        let (phase1, phase2): (Vec<_>, Vec<_>) = population
            .iter()
            .enumerate()
            .map(|(i, s)| (i, normalize(s, cfg.string_len)))
            .partition(|(i, _)| i % 2 == 0);

        // ---- Phase 1: per-position fragment frequency, via HR. ----
        let fragment_oracle = HadamardResponse::new(cfg.fragment_domain(), cfg.epsilon);
        let mut aggs: Vec<_> = (0..positions)
            .map(|_| fragment_oracle.new_aggregator())
            .collect();
        for (i, symbols) in &phase1 {
            // Each user is assigned one position (deterministic round-robin
            // stands in for uniform sampling; both give n/positions users
            // per position).
            let pos = i / 2 % positions;
            let frag = pack(&symbols[pos * cfg.fragment_len..(pos + 1) * cfg.fragment_len]);
            let report = fragment_oracle.randomize(frag, rng);
            aggs[pos].accumulate(&report);
        }
        let mut frequent: Vec<Vec<u64>> = Vec::with_capacity(positions);
        for agg in &aggs {
            let est = agg.estimate();
            let mut indexed: Vec<(u64, f64)> = est
                .iter()
                .enumerate()
                .map(|(v, &e)| (v as u64, e))
                .collect();
            indexed.sort_by(|a, b| b.1.total_cmp(&a.1));
            frequent.push(
                indexed
                    .into_iter()
                    .take(cfg.fragments_per_position)
                    .filter(|&(_, e)| e > 0.0)
                    .map(|(v, _)| v)
                    .collect(),
            );
        }

        // ---- Assemble candidates: capped cross product. ----
        let mut candidates: Vec<Vec<u64>> = vec![Vec::new()];
        for pos_frags in &frequent {
            let mut next = Vec::new();
            for partial in &candidates {
                for &frag in pos_frags {
                    if next.len() >= cfg.max_candidates {
                        break;
                    }
                    let mut extended = partial.clone();
                    extended.push(frag);
                    next.push(extended);
                }
            }
            candidates = next;
            if candidates.is_empty() {
                return Vec::new();
            }
        }

        // ---- Phase 2: verify candidates with OLH over candidate indices.
        let n_cand = candidates.len() as u64;
        let verify_oracle = OptimizedLocalHashing::new(n_cand + 1, cfg.epsilon);
        let mut verify_agg = verify_oracle.new_aggregator();
        // Map candidate fragment tuples to indices for client lookup.
        let index_of = |symbols: &[u64]| -> u64 {
            let frags: Vec<u64> = (0..positions)
                .map(|p| pack(&symbols[p * cfg.fragment_len..(p + 1) * cfg.fragment_len]))
                .collect();
            candidates
                .iter()
                .position(|c| c[..] == frags[..])
                .map(|i| i as u64)
                .unwrap_or(n_cand) // reserved "other" bucket
        };
        for (_, symbols) in &phase2 {
            let v = index_of(symbols);
            let report = verify_oracle.randomize(v, rng);
            verify_agg.accumulate(&report);
        }
        let items: Vec<u64> = (0..n_cand).collect();
        let estimates = verify_agg.estimate_items(&items);

        // Scale phase-2 estimates to the whole population (phase 2 saw
        // half the users).
        let scale = population.len() as f64 / phase2.len().max(1) as f64;
        let mut out: Vec<DiscoveredString> = candidates
            .iter()
            .zip(&estimates)
            .filter(|&(_, &e)| e > 0.0)
            .map(|(frags, &e)| DiscoveredString {
                value: frags
                    .iter()
                    .map(|&f| unpack(f, cfg.fragment_len))
                    .collect::<Vec<_>>()
                    .join(""),
                estimate: e * scale,
            })
            .collect();
        out.sort_by(|a, b| b.estimate.total_cmp(&a.estimate));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config() -> DiscoveryConfig {
        DiscoveryConfig {
            string_len: 6,
            fragment_len: 2,
            epsilon: Epsilon::new(3.0).unwrap(),
            fragments_per_position: 4,
            max_candidates: 64,
        }
    }

    #[test]
    fn normalize_and_pack_roundtrip() {
        let s = normalize(b"ab.9", 6);
        assert_eq!(s, vec![0, 1, 36, 35, PAD, PAD]);
        let frag = pack(&s[0..2]);
        assert_eq!(unpack(frag, 2), "ab");
        assert_eq!(unpack(pack(&s[4..6]), 2), "**");
    }

    #[test]
    fn case_folds_and_unknowns_map_in_alphabet() {
        assert_eq!(symbol(b'A'), symbol(b'a'));
        assert_eq!(symbol(b'!'), symbol(b'-'));
        for b in 0..=255u8 {
            assert!(symbol(b) < RADIX);
        }
    }

    #[test]
    fn discovers_dominant_strings() {
        let cfg = config();
        let discovery = NGramDiscovery::new(cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        // 70% "google", 25% "reddit", 5% long tail.
        let mut population: Vec<&[u8]> = Vec::new();
        for i in 0..12_000 {
            population.push(match i % 20 {
                0..=13 => b"google",
                14..=18 => b"reddit",
                _ => b"zq-a1x",
            });
        }
        let found = discovery.run(&population, &mut rng);
        assert!(!found.is_empty(), "should discover something");
        assert_eq!(
            found[0].value, "google",
            "top string should be google: {found:?}"
        );
        let reddit = found.iter().find(|d| d.value == "reddit");
        assert!(reddit.is_some(), "reddit should be discovered: {found:?}");
        // Estimates roughly proportional to the population.
        assert!(
            (found[0].estimate - 0.7 * 12_000.0).abs() < 3000.0,
            "google estimate {}",
            found[0].estimate
        );
    }

    #[test]
    fn rejects_bad_configs() {
        let mut c = config();
        c.fragment_len = 4; // does not divide 6
        assert!(NGramDiscovery::new(c).is_err());
        let mut c = config();
        c.fragment_len = 0;
        assert!(NGramDiscovery::new(c).is_err());
        let mut c = config();
        c.string_len = 16;
        c.fragment_len = 4; // domain 40^4 = 2.56M > 2^20
        assert!(NGramDiscovery::new(c).is_err());
    }

    #[test]
    fn empty_population_yields_empty() {
        let discovery = NGramDiscovery::new(config()).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let found = discovery.run(&[], &mut rng);
        // With no signal, nothing with positive estimate should dominate;
        // accept empty or all-noise results with tiny estimates.
        for d in &found {
            assert!(d.estimate.abs() < 1.0);
        }
    }
}
