//! Wire codec for RAPPOR reports.
//!
//! A [`RapporReport`] travels as `uvarint cohort | bitvec` (the IRR'd
//! Bloom bits, packed 8 per byte) under
//! [`ldp_core::wire::tag::RAPPOR`] — the on-the-wire shape of the CCS
//! 2014 deployment's per-report payload. RAPPOR's server side decodes
//! against a *candidate dictionary* rather than an enumerable item
//! domain, so it is not registered with the item-indexed collector
//! service; the codec exists so RAPPOR traffic shares the workspace
//! frame format (and its round-trip guarantees) end to end.

use crate::client::RapporReport;
use ldp_core::wire::{get_bitvec, put_bitvec, put_uvarint, tag, WireReader, WireReport};
use ldp_core::{LdpError, Result};

impl WireReport for RapporReport {
    const TAG: u8 = tag::RAPPOR;

    fn encode_payload(&self, out: &mut Vec<u8>) {
        put_uvarint(out, self.cohort as u64);
        put_bitvec(out, &self.bits);
    }

    fn decode_payload(r: &mut WireReader<'_>) -> Result<Self> {
        let cohort = r.uvarint()?;
        let cohort = u32::try_from(cohort)
            .map_err(|_| LdpError::Malformed(format!("cohort {cohort} overflows u32")))?;
        Ok(Self {
            cohort,
            bits: get_bitvec(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_core::wire::{decode_report, encode_report_vec};
    use ldp_sketch::BitVec;

    #[test]
    fn rappor_report_round_trips() {
        let report = RapporReport {
            cohort: 17,
            bits: BitVec::from_bools((0..129).map(|i| i % 3 == 0)),
        };
        let back: RapporReport = decode_report(&encode_report_vec(&report)).unwrap();
        assert_eq!(back, report);
    }
}
