//! The RAPPOR client: Bloom encoding, memoized permanent randomized
//! response, and per-report instantaneous randomized response.
//!
//! The *permanent* layer is the part the tutorial stresses for longitudinal
//! collection (and that Microsoft later adapted as memoization): the noisy
//! bits `B′` are drawn **once per distinct value** and cached, so an
//! adversary observing every daily report can never average away the PRR
//! noise — the lifetime leak stays bounded by `ε∞`.

use crate::params::RapporParams;
use ldp_core::fo::batch::GeometricSkip;
use ldp_sketch::{BitVec, BloomFilter};
use rand::Rng;
use std::collections::HashMap;

/// One RAPPOR report: the client's cohort and the IRR-perturbed bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RapporReport {
    /// Cohort the reporting client belongs to.
    pub cohort: u32,
    /// The perturbed Bloom-filter bits.
    pub bits: BitVec,
}

/// A stateful RAPPOR client assigned to one cohort.
///
/// Holds the PRR memoization table (`value → B′`), which in the real
/// deployment lives on the user's device across sessions.
#[derive(Debug, Clone)]
pub struct RapporClient {
    params: RapporParams,
    cohort: u32,
    memoized: HashMap<Vec<u8>, BitVec>,
    /// Geometric-skip sampler for IRR over the PRR's 1-positions (rate
    /// `q`), precomputed once — the CDF boundary table is not rebuilt
    /// per report.
    irr_ones: GeometricSkip,
    /// Geometric-skip sampler for IRR over the PRR's 0-positions (rate
    /// `p`).
    irr_zeros: GeometricSkip,
}

impl RapporClient {
    /// Creates a client in `cohort`. In a deployment the cohort is drawn
    /// uniformly at install time; the constructor takes an `rng` to allow
    /// `RapporClient::random_cohort` semantics while keeping explicit
    /// cohorts testable.
    ///
    /// # Panics
    /// Panics if `cohort >= params.cohorts()`.
    pub fn new<R: Rng + ?Sized>(params: RapporParams, cohort: u32, _rng: &mut R) -> Self {
        assert!(
            cohort < params.cohorts(),
            "cohort {cohort} out of range {}",
            params.cohorts()
        );
        Self {
            irr_ones: GeometricSkip::new(params.q()),
            irr_zeros: GeometricSkip::new(params.p()),
            params,
            cohort,
            memoized: HashMap::new(),
        }
    }

    /// Creates a client with a uniformly random cohort (deployment
    /// behaviour).
    pub fn with_random_cohort<R: Rng + ?Sized>(params: RapporParams, rng: &mut R) -> Self {
        let cohort = rng.gen_range(0..params.cohorts());
        Self::new(params, cohort, rng)
    }

    /// This client's cohort.
    pub fn cohort(&self) -> u32 {
        self.cohort
    }

    /// The permanent (memoized) bits for `value`, creating them on first
    /// use: `B′_j = B_j` w.p. `1−f`, else a fair coin scaled by `f`
    /// (i.e. `1` w.p. `f/2`, `0` w.p. `f/2`).
    pub fn permanent_bits<R: Rng + ?Sized>(&mut self, value: &[u8], rng: &mut R) -> &BitVec {
        if !self.memoized.contains_key(value) {
            let bloom = BloomFilter::signature(
                self.params.bloom_bits(),
                self.params.hashes(),
                self.cohort,
                value,
            );
            let f = self.params.f();
            let mut prr = BitVec::zeros(self.params.bloom_bits());
            for i in 0..self.params.bloom_bits() {
                let b = bloom.get(i);
                let noisy = if rng.gen_bool(f) {
                    rng.gen_bool(0.5)
                } else {
                    b
                };
                prr.set(i, noisy);
            }
            self.memoized.insert(value.to_vec(), prr);
        }
        &self.memoized[value]
    }

    /// Produces one report for `value`: PRR (memoized) then fresh IRR.
    pub fn report<R: Rng + ?Sized>(&mut self, value: &[u8], rng: &mut R) -> RapporReport {
        let mut bits = BitVec::zeros(self.params.bloom_bits());
        let cohort = self.report_into(value, rng, &mut bits);
        RapporReport { cohort, bits }
    }

    /// Allocation-free reporting: writes the IRR bits for `value` into a
    /// caller-owned buffer (cleared first) and returns the cohort. Hot
    /// loops — simulated populations, the encode bench — reuse one buffer
    /// across reports instead of allocating a `BitVec` each time; pair
    /// with [`crate::RapporAggregator::accumulate_bits`] to keep the whole
    /// randomize→accumulate round allocation-free.
    ///
    /// The IRR layer samples with geometric skipping
    /// (`ldp_core::fo::batch`) per channel class: the set bits among the
    /// PRR's 1-positions (rate `q`) and 0-positions (rate `p`) each cost
    /// one uniform draw per flipped bit instead of one per position.
    ///
    /// # Panics
    /// Panics if `bits.len() != params.bloom_bits()`.
    pub fn report_into<R: Rng + ?Sized>(
        &mut self,
        value: &[u8],
        rng: &mut R,
        bits: &mut BitVec,
    ) -> u32 {
        let k = self.params.bloom_bits();
        assert_eq!(bits.len(), k, "report buffer width mismatch");
        // First use of a value draws (and memoizes) its PRR bits; the
        // mutable borrow ends before the read-only IRR pass below.
        if !self.memoized.contains_key(value) {
            let _ = self.permanent_bits(value, rng);
        }
        let permanent = &self.memoized[value];
        bits.clear();
        let ones = permanent.count_ones();
        self.irr_ones.sample_into(ones as u64, rng, |j| {
            bits.set(permanent.nth_one(j as usize), true);
        });
        self.irr_zeros.sample_into((k - ones) as u64, rng, |j| {
            bits.set(permanent.nth_zero(j as usize), true);
        });
        self.cohort
    }

    /// Number of distinct values memoized so far.
    pub fn memoized_values(&self) -> usize {
        self.memoized.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params() -> RapporParams {
        RapporParams::small(8).unwrap()
    }

    #[test]
    fn permanent_bits_are_memoized() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut c = RapporClient::new(params(), 0, &mut rng);
        let a = c.permanent_bits(b"value", &mut rng).clone();
        let b = c.permanent_bits(b"value", &mut rng).clone();
        assert_eq!(a, b, "PRR must be drawn once per value");
        assert_eq!(c.memoized_values(), 1);
        c.permanent_bits(b"other", &mut rng);
        assert_eq!(c.memoized_values(), 2);
    }

    #[test]
    fn reports_differ_between_calls_but_share_prr() {
        // IRR is fresh per report: two reports of the same value should
        // (almost surely) differ, while the underlying PRR stays fixed.
        let mut rng = StdRng::seed_from_u64(2);
        let mut c = RapporClient::new(params(), 3, &mut rng);
        let r1 = c.report(b"value", &mut rng);
        let r2 = c.report(b"value", &mut rng);
        assert_eq!(r1.cohort, 3);
        assert_ne!(r1.bits, r2.bits, "IRR should differ across reports");
        assert_eq!(c.memoized_values(), 1);
    }

    #[test]
    fn report_bit_rates_match_channel() {
        // Aggregate many fresh clients reporting the same value; per-bit
        // 1-rates must match q* on signature bits and p* off them.
        let params = RapporParams::new(64, 2, 1, 0.5, 0.4, 0.8).unwrap();
        let (p_star, q_star) = params.effective_channel();
        let mut rng = StdRng::seed_from_u64(3);
        let sig = ldp_sketch::BloomFilter::signature(64, 2, 0, b"target");
        let n = 40_000;
        let mut counts = vec![0u64; 64];
        for _ in 0..n {
            let mut c = RapporClient::new(params.clone(), 0, &mut rng);
            let r = c.report(b"target", &mut rng);
            r.bits.accumulate_into(&mut counts);
        }
        for (i, &c) in counts.iter().enumerate() {
            let rate = c as f64 / n as f64;
            let expected = if sig.get(i) { q_star } else { p_star };
            assert!(
                (rate - expected).abs() < 0.02,
                "bit {i}: rate={rate} expected={expected}"
            );
        }
    }

    #[test]
    fn report_into_reuses_buffer_and_matches_report() {
        // Same seed: `report` is `report_into` plus an allocation, so the
        // two must produce identical bits and consume identical RNG.
        let mut rng_a = StdRng::seed_from_u64(21);
        let mut rng_b = StdRng::seed_from_u64(21);
        let mut ca = RapporClient::new(params(), 2, &mut rng_a);
        let mut cb = RapporClient::new(params(), 2, &mut rng_b);
        let mut buf = BitVec::zeros(ca.params.bloom_bits());
        for _ in 0..20 {
            let r = ca.report(b"value", &mut rng_a);
            let cohort = cb.report_into(b"value", &mut rng_b, &mut buf);
            assert_eq!(cohort, r.cohort);
            assert_eq!(buf, r.bits);
        }
    }

    #[test]
    #[should_panic(expected = "buffer width mismatch")]
    fn report_into_rejects_wrong_width() {
        let mut rng = StdRng::seed_from_u64(22);
        let mut c = RapporClient::new(params(), 0, &mut rng);
        let mut buf = BitVec::zeros(13);
        c.report_into(b"v", &mut rng, &mut buf);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cohort_out_of_range_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        RapporClient::new(params(), 8, &mut rng);
    }

    #[test]
    fn random_cohort_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let c = RapporClient::with_random_cohort(params(), &mut rng);
            assert!(c.cohort() < 8);
        }
    }
}
