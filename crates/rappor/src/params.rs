//! RAPPOR configuration and its privacy accounting.
//!
//! RAPPOR's privacy story has two layers, and the original paper quotes
//! both:
//!
//! * **One-time / instantaneous ε₁** — what a single report leaks about the
//!   *memoized* Bloom bits. With IRR probabilities `q` (report 1 given
//!   B′=1) and `p` (report 1 given B′=0), a report of `h` set bits yields
//!   `ε₁ = h · ln( q*(1−p*) / (p*(1−q*)) )` with `(p*, q*)` the composed
//!   PRR∘IRR channel.
//! * **Permanent ε∞** — what the memoized B′ itself leaks about the true
//!   value, the bound that holds *no matter how many reports are sent*:
//!   `ε∞ = 2h · ln((1−f/2)/(f/2))`.

use ldp_core::{Error, Result};

/// Parameters of a RAPPOR collection.
///
/// `f` is the permanent-response noise, `p`/`q` the instantaneous
/// probabilities of reporting 1 given a memoized 0/1 respectively.
#[derive(Debug, Clone, PartialEq)]
pub struct RapporParams {
    bloom_bits: usize,
    hashes: u32,
    cohorts: u32,
    f: f64,
    p: f64,
    q: f64,
}

impl RapporParams {
    /// Creates and validates a parameter set.
    ///
    /// # Errors
    /// Rejects empty filters/hash sets/cohorts, probabilities outside
    /// `[0, 1)`, and non-informative channels (`q* ≤ p*`).
    pub fn new(
        bloom_bits: usize,
        hashes: u32,
        cohorts: u32,
        f: f64,
        p: f64,
        q: f64,
    ) -> Result<Self> {
        if bloom_bits == 0 || hashes == 0 || cohorts == 0 {
            return Err(Error::InvalidParameter(
                "bloom_bits, hashes and cohorts must all be positive".into(),
            ));
        }
        if !(0.0..1.0).contains(&f) {
            return Err(Error::InvalidParameter(format!(
                "f must be in [0,1), got {f}"
            )));
        }
        if !(0.0..1.0).contains(&p) || !(0.0..=1.0).contains(&q) {
            return Err(Error::InvalidParameter(format!(
                "p, q must be probabilities, got p={p} q={q}"
            )));
        }
        let params = Self {
            bloom_bits,
            hashes,
            cohorts,
            f,
            p,
            q,
        };
        let (p_star, q_star) = params.effective_channel();
        if q_star <= p_star {
            return Err(Error::InvalidParameter(format!(
                "channel not informative: q*={q_star} <= p*={p_star}"
            )));
        }
        Ok(params)
    }

    /// The parameter set the RAPPOR paper reports Chrome shipping with:
    /// 128-bit filters, 2 hashes, `f = ½`, `p = ½`, `q = ¾`.
    ///
    /// # Errors
    /// Propagates validation errors (never for valid `cohorts`).
    pub fn chrome_default(cohorts: u32) -> Result<Self> {
        Self::new(128, 2, cohorts, 0.5, 0.5, 0.75)
    }

    /// A smaller configuration for simulations: 32-bit filters, 2 hashes.
    ///
    /// # Errors
    /// Propagates validation errors (never for valid `cohorts`).
    pub fn small(cohorts: u32) -> Result<Self> {
        Self::new(32, 2, cohorts, 0.25, 0.35, 0.65)
    }

    /// Bloom filter width in bits (`k`).
    pub fn bloom_bits(&self) -> usize {
        self.bloom_bits
    }

    /// Hash functions per cohort (`h`).
    pub fn hashes(&self) -> u32 {
        self.hashes
    }

    /// Number of cohorts (`m`).
    pub fn cohorts(&self) -> u32 {
        self.cohorts
    }

    /// Permanent-response noise parameter `f`.
    pub fn f(&self) -> f64 {
        self.f
    }

    /// IRR probability of reporting 1 given memoized 0.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// IRR probability of reporting 1 given memoized 1.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// The composed PRR∘IRR channel `(p*, q*)`:
    /// `q* = Pr[report 1 | true bit 1]`, `p* = Pr[report 1 | true bit 0]`.
    ///
    /// `q* = (1−f/2)·q + (f/2)·p`, `p* = (f/2)·q + (1−f/2)·p`.
    pub fn effective_channel(&self) -> (f64, f64) {
        let half_f = self.f / 2.0;
        let q_star = (1.0 - half_f) * self.q + half_f * self.p;
        let p_star = half_f * self.q + (1.0 - half_f) * self.p;
        (p_star, q_star)
    }

    /// One-report privacy loss
    /// `ε₁ = h · ln( q*(1−p*) / (p*(1−q*)) )`.
    pub fn epsilon_one_report(&self) -> f64 {
        let (p_star, q_star) = self.effective_channel();
        self.hashes as f64 * ((q_star * (1.0 - p_star)) / (p_star * (1.0 - q_star))).ln()
    }

    /// Lifetime privacy bound from the permanent response alone:
    /// `ε∞ = 2h · ln((1−f/2)/(f/2))`. Infinite when `f = 0` (no PRR).
    pub fn epsilon_permanent(&self) -> f64 {
        if self.f == 0.0 {
            return f64::INFINITY;
        }
        let half_f = self.f / 2.0;
        2.0 * self.hashes as f64 * ((1.0 - half_f) / half_f).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_default_epsilons_match_paper() {
        // The CCS'14 paper quotes eps_infinity = ln(3^4) ≈ 4.39 for
        // f=1/2, h=2:  2*2*ln((1-0.25)/0.25) = 4 ln 3.
        let p = RapporParams::chrome_default(64).unwrap();
        let expected = 4.0 * 3.0f64.ln();
        assert!((p.epsilon_permanent() - expected).abs() < 1e-9);
        // And a finite, smaller one-report epsilon.
        let e1 = p.epsilon_one_report();
        assert!(e1 > 0.0 && e1 < expected);
    }

    #[test]
    fn effective_channel_interpolates() {
        // With f=0 the channel is exactly (p, q); with f->1 it collapses.
        let no_prr = RapporParams::new(16, 2, 4, 0.0, 0.3, 0.7).unwrap();
        let (ps, qs) = no_prr.effective_channel();
        assert!((ps - 0.3).abs() < 1e-12 && (qs - 0.7).abs() < 1e-12);
        assert_eq!(no_prr.epsilon_permanent(), f64::INFINITY);

        let heavy = RapporParams::new(16, 2, 4, 0.9, 0.3, 0.7).unwrap();
        let (ph, qh) = heavy.effective_channel();
        assert!(qh - ph < qs - ps, "more PRR noise shrinks the channel");
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(RapporParams::new(0, 2, 4, 0.5, 0.5, 0.75).is_err());
        assert!(RapporParams::new(16, 0, 4, 0.5, 0.5, 0.75).is_err());
        assert!(RapporParams::new(16, 2, 0, 0.5, 0.5, 0.75).is_err());
        // q <= p: channel carries no signal.
        assert!(RapporParams::new(16, 2, 4, 0.5, 0.75, 0.5).is_err());
        assert!(RapporParams::new(16, 2, 4, 1.0, 0.5, 0.75).is_err());
    }

    #[test]
    fn epsilon_monotone_in_f() {
        let mut last = f64::INFINITY;
        for &f in &[0.125, 0.25, 0.5, 0.75] {
            let p = RapporParams::new(128, 2, 8, f, 0.5, 0.75).unwrap();
            let e = p.epsilon_permanent();
            assert!(e < last, "eps_inf should fall as f grows");
            last = e;
        }
    }
}
