//! The RAPPOR aggregator: per-cohort bit counting, channel debiasing, and
//! candidate regression (LASSO selection + least-squares fit).
//!
//! Decoding follows the CCS 2014 paper's pipeline:
//!
//! 1. Per cohort `i` and bit `j`, debias the observed 1-count through the
//!    composed PRR∘IRR channel: `t_ij = (c_ij − p*·n_i)/(q* − p*)` — an
//!    unbiased estimate of how many of cohort `i`'s users had Bloom bit
//!    `j` set.
//! 2. Stack `t` into a vector `Y` of length `cohorts·k`, and build the
//!    design matrix `X` whose column for candidate `s` is the stacked
//!    indicator of `s`'s Bloom signature in every cohort.
//! 3. Fit non-negative LASSO to select plausible candidates, then ordinary
//!    least squares on the survivors for unbiased magnitudes (the paper's
//!    exact two-stage scheme).
//! 4. A candidate's frequency estimate is its coefficient × cohorts
//!    (each cohort sees `≈ n/m` of its users).

use crate::client::RapporReport;
use crate::params::RapporParams;
use ldp_sketch::linalg::{lasso_sparse, least_squares, Matrix, SparseColMatrix};
use ldp_sketch::BloomFilter;

/// A decoded candidate: its estimated population count and selection state.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedCandidate {
    /// Index into the candidate list passed to
    /// [`RapporAggregator::decode`].
    pub candidate: usize,
    /// Estimated number of users holding this value.
    pub estimate: f64,
    /// Whether the LASSO stage selected the candidate (unselected
    /// candidates get estimate 0 from the OLS stage).
    pub selected: bool,
}

/// Server-side accumulation of RAPPOR reports.
#[derive(Debug, Clone)]
pub struct RapporAggregator {
    params: RapporParams,
    /// Per-cohort, per-bit 1-counts: `counts[cohort][bit]`.
    counts: Vec<Vec<u64>>,
    /// Reports per cohort.
    cohort_sizes: Vec<u64>,
}

impl ldp_core::snapshot::StateSnapshot for RapporAggregator {
    fn state_tag(&self) -> u8 {
        ldp_core::snapshot::state_tag::RAPPOR
    }

    fn snapshot_payload(&self, out: &mut Vec<u8>) {
        ldp_core::wire::put_uvarint(out, self.params.bloom_bits() as u64);
        ldp_core::wire::put_uvarint(out, u64::from(self.params.hashes()));
        ldp_core::wire::put_uvarint(out, u64::from(self.params.cohorts()));
        ldp_core::wire::put_f64_le(out, self.params.f());
        ldp_core::wire::put_f64_le(out, self.params.p());
        ldp_core::wire::put_f64_le(out, self.params.q());
        ldp_core::snapshot::put_counts(out, &self.cohort_sizes);
        ldp_core::snapshot::put_counts(out, &self.counts_flat());
    }

    fn restore_payload(&mut self, r: &mut ldp_core::wire::WireReader<'_>) -> ldp_core::Result<()> {
        let k = self.params.bloom_bits();
        let m = self.params.cohorts() as usize;
        ldp_core::snapshot::check_u64(r, k as u64, "RAPPOR bloom bits")?;
        ldp_core::snapshot::check_u64(r, u64::from(self.params.hashes()), "RAPPOR hash count")?;
        ldp_core::snapshot::check_u64(r, m as u64, "RAPPOR cohorts")?;
        ldp_core::snapshot::check_f64(r, self.params.f(), "RAPPOR f")?;
        ldp_core::snapshot::check_f64(r, self.params.p(), "RAPPOR p")?;
        ldp_core::snapshot::check_f64(r, self.params.q(), "RAPPOR q")?;
        let cohort_sizes = ldp_core::snapshot::get_counts(r, m, "RAPPOR cohort sizes")?;
        let flat = ldp_core::snapshot::get_counts(r, m * k, "RAPPOR bit counts")?;
        self.cohort_sizes = cohort_sizes;
        for (row, chunk) in self.counts.iter_mut().zip(flat.chunks_exact(k)) {
            row.copy_from_slice(chunk);
        }
        Ok(())
    }
}

impl RapporAggregator {
    /// Creates an empty aggregator for the given parameters.
    pub fn new(params: RapporParams) -> Self {
        let m = params.cohorts() as usize;
        let k = params.bloom_bits();
        Self {
            params,
            counts: vec![vec![0; k]; m],
            cohort_sizes: vec![0; m],
        }
    }

    /// Folds one report into the per-cohort bit counts.
    ///
    /// # Panics
    /// Panics if the report's cohort or width does not match the
    /// aggregator's parameters.
    pub fn accumulate(&mut self, report: &RapporReport) {
        let cohort = report.cohort as usize;
        assert!(cohort < self.counts.len(), "cohort {cohort} out of range");
        assert_eq!(
            report.bits.len(),
            self.params.bloom_bits(),
            "report width mismatch"
        );
        report.bits.accumulate_into(&mut self.counts[cohort]);
        self.cohort_sizes[cohort] += 1;
    }

    /// Folds one report given as a raw `(cohort, bits)` pair — the
    /// allocation-free counterpart of [`accumulate`](Self::accumulate),
    /// for loops that reuse one bit buffer via
    /// [`crate::RapporClient::report_into`].
    ///
    /// # Panics
    /// Panics if the cohort or width does not match the parameters.
    pub fn accumulate_bits(&mut self, cohort: u32, bits: &ldp_sketch::BitVec) {
        let cohort = cohort as usize;
        assert!(cohort < self.counts.len(), "cohort {cohort} out of range");
        assert_eq!(
            bits.len(),
            self.params.bloom_bits(),
            "report width mismatch"
        );
        bits.accumulate_into(&mut self.counts[cohort]);
        self.cohort_sizes[cohort] += 1;
    }

    /// Total reports accumulated.
    pub fn reports(&self) -> u64 {
        self.cohort_sizes.iter().sum()
    }

    /// The parameters this aggregator was configured for.
    pub fn params(&self) -> &RapporParams {
        &self.params
    }

    /// Merges another aggregator's counters into this one, as if its
    /// reports had been accumulated here. Exact (integer addition), so
    /// sharded or checkpointed collection is bit-identical to sequential.
    ///
    /// # Panics
    /// Panics if the two aggregators were built from different parameters.
    pub fn merge(&mut self, other: Self) {
        assert!(self.params == other.params, "merge: parameter mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        }
        for (a, b) in self.cohort_sizes.iter_mut().zip(&other.cohort_sizes) {
            *a += b;
        }
    }

    /// Subtracts another aggregator's counters from this one — the exact
    /// inverse of [`merge`](Self::merge) for retiring a window delta
    /// from a running total. All-or-nothing: every cohort row and the
    /// cohort sizes are underflow-checked before any counter moves.
    ///
    /// # Errors
    /// [`ldp_core::LdpError::StateMismatch`] if the parameters differ or
    /// `other` is not a sub-aggregate of this state.
    pub fn try_subtract(&mut self, other: &Self) -> ldp_core::Result<()> {
        if self.params != other.params {
            return Err(ldp_core::LdpError::StateMismatch(
                "subtract: RAPPOR parameter mismatch".into(),
            ));
        }
        let fits = self
            .counts
            .iter()
            .zip(&other.counts)
            .all(|(a, b)| ldp_core::fo::counts_fit(a, b))
            && ldp_core::fo::counts_fit(&self.cohort_sizes, &other.cohort_sizes);
        if !fits {
            return Err(ldp_core::LdpError::StateMismatch(
                "subtract: RAPPOR subtrahend is not a sub-aggregate of this state".into(),
            ));
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            ldp_core::fo::subtract_counts(a, b);
        }
        ldp_core::fo::subtract_counts(&mut self.cohort_sizes, &other.cohort_sizes);
        Ok(())
    }

    /// The debiased per-cohort, per-bit estimates `t_ij` (step 1 of
    /// decoding). Exposed for diagnostics and tests.
    pub fn debiased_bit_counts(&self) -> Vec<Vec<f64>> {
        let (p_star, q_star) = self.params.effective_channel();
        self.counts
            .iter()
            .zip(&self.cohort_sizes)
            .map(|(bits, &n)| {
                bits.iter()
                    .map(|&c| (c as f64 - p_star * n as f64) / (q_star - p_star))
                    .collect()
            })
            .collect()
    }

    fn counts_flat(&self) -> Vec<u64> {
        self.counts.iter().flatten().copied().collect()
    }

    /// The stacked 0/1 candidate design matrix in sparse column form:
    /// column `s` holds the row indices `i·k + j` where candidate `s`'s
    /// Bloom signature sets bit `j` in cohort `i`. Only the `h` set bits
    /// per cohort are stored — a `h/k` fill (≈3% at h=2, k=64) instead
    /// of a dense `m·k × candidates` allocation.
    fn design_matrix(&self, candidates: &[&[u8]]) -> SparseColMatrix {
        let k = self.params.bloom_bits();
        let m = self.params.cohorts() as usize;
        let columns: Vec<Vec<u32>> = candidates
            .iter()
            .map(|cand| {
                let mut col = Vec::with_capacity(m * self.params.hashes() as usize);
                for i in 0..m {
                    let sig = BloomFilter::signature(k, self.params.hashes(), i as u32, cand);
                    col.extend(sig.ones().map(|j| (i * k + j) as u32));
                }
                col
            })
            .collect();
        SparseColMatrix::from_columns(m * k, &columns)
    }

    /// Decodes candidate frequencies via LASSO selection + OLS fit.
    ///
    /// Returns one [`DecodedCandidate`] per input candidate, in input
    /// order. Estimates are population counts (may be slightly negative
    /// for absent candidates; unbiasedness over clamping).
    ///
    /// The selection stage runs on the sparse design matrix with the
    /// active-set solver ([`lasso_sparse`]) — per sweep it touches only
    /// the `h·m` stored bits of each column instead of all `m·k` rows,
    /// and between full sweeps only the few selected candidates at all.
    /// Statistically equivalent to the dense-matrix decode this replaces
    /// (same design matrix, same `λ`, same convergence tolerance; the
    /// active-set schedule reorders coordinate updates).
    pub fn decode(&self, candidates: &[&[u8]]) -> Vec<DecodedCandidate> {
        let k = self.params.bloom_bits();
        let m = self.params.cohorts() as usize;
        let rows = m * k;
        let n_cand = candidates.len();
        if n_cand == 0 {
            return Vec::new();
        }

        // Design matrix: X[(i*k + j), s] = candidate s's signature bit j in
        // cohort i — built directly in sparse column form.
        let x = self.design_matrix(candidates);

        // Target: debiased bit counts, stacked.
        let t = self.debiased_bit_counts();
        let mut y = Vec::with_capacity(rows);
        for cohort in &t {
            y.extend_from_slice(cohort);
        }

        // Stage 1: non-negative LASSO for support selection. Lambda scales
        // with the noise level: sd of t_ij is ~ sqrt(n_i q*(1-q*))/(q*-p*).
        let (p_star, q_star) = self.params.effective_channel();
        let avg_cohort = self.reports() as f64 / m as f64;
        let noise_sd = (avg_cohort * q_star * (1.0 - q_star)).sqrt() / (q_star - p_star);
        let lambda = noise_sd * (2.0 * (n_cand.max(2) as f64).ln()).sqrt();
        let selected_coefs = lasso_sparse(&x, &y, lambda, true, 200, 1e-6);
        let support: Vec<usize> = (0..n_cand).filter(|&s| selected_coefs[s] > 1e-9).collect();

        let mut out: Vec<DecodedCandidate> = (0..n_cand)
            .map(|s| DecodedCandidate {
                candidate: s,
                estimate: 0.0,
                selected: false,
            })
            .collect();
        if support.is_empty() {
            return out;
        }

        // Stage 2: OLS restricted to the support (unbiased magnitudes).
        // The support is small, so the dense QR solver is the right tool.
        let mut xs = Matrix::zeros(rows, support.len());
        for (c_new, &s) in support.iter().enumerate() {
            for &r in x.col(s) {
                xs.set(r as usize, c_new, 1.0);
            }
        }
        let coefs = least_squares(&xs, &y);
        for (c_new, &s) in support.iter().enumerate() {
            out[s].selected = true;
            // Coefficient is per-cohort user count; total = coef * m when
            // cohorts are balanced. Use the exact cohort-size-weighted
            // scaling: sum over cohorts of (coef * n_i / avg) / m == coef*m
            // for balanced cohorts.
            out[s].estimate = coefs[c_new] * m as f64;
        }
        out
    }

    /// Convenience: decode and return `(candidate index, estimate)` sorted
    /// by estimate descending, dropping unselected candidates.
    pub fn top_candidates(&self, candidates: &[&[u8]]) -> Vec<(usize, f64)> {
        let mut decoded: Vec<(usize, f64)> = self
            .decode(candidates)
            .into_iter()
            .filter(|d| d.selected)
            .map(|d| (d.candidate, d.estimate))
            .collect();
        decoded.sort_by(|a, b| b.1.total_cmp(&a.1));
        decoded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::RapporClient;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Simulates a population holding values with the given weights and
    /// returns the aggregator.
    fn simulate(
        params: &RapporParams,
        values: &[(&[u8], usize)],
        rng: &mut StdRng,
    ) -> RapporAggregator {
        let mut agg = RapporAggregator::new(params.clone());
        for &(value, count) in values {
            for _ in 0..count {
                let mut client = RapporClient::with_random_cohort(params.clone(), rng);
                agg.accumulate(&client.report(value, rng));
            }
        }
        agg
    }

    #[test]
    fn debiased_counts_track_signatures() {
        let params = RapporParams::new(32, 2, 2, 0.25, 0.35, 0.65).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let agg = simulate(&params, &[(b"only-value", 8000)], &mut rng);
        let t = agg.debiased_bit_counts();
        for cohort in 0..2u32 {
            let sig = BloomFilter::signature(32, 2, cohort, b"only-value");
            let n_i = agg.cohort_sizes[cohort as usize] as f64;
            for (j, &tj) in t[cohort as usize].iter().enumerate() {
                let expected = if sig.get(j) { n_i } else { 0.0 };
                assert!(
                    (tj - expected).abs() < n_i * 0.15 + 60.0,
                    "cohort {cohort} bit {j}: {tj} vs {expected}"
                );
            }
        }
    }

    #[test]
    fn decode_recovers_frequencies() {
        let params = RapporParams::new(64, 2, 8, 0.25, 0.35, 0.65).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let agg = simulate(
            &params,
            &[(b"alpha", 6000), (b"beta", 3000), (b"gamma", 1000)],
            &mut rng,
        );
        let candidates: Vec<&[u8]> = vec![b"alpha", b"beta", b"gamma", b"absent-1", b"absent-2"];
        let decoded = agg.decode(&candidates);
        assert!(decoded[0].selected, "alpha must be selected");
        assert!(decoded[1].selected, "beta must be selected");
        assert!(
            (decoded[0].estimate - 6000.0).abs() < 1200.0,
            "alpha={}",
            decoded[0].estimate
        );
        assert!(
            (decoded[1].estimate - 3000.0).abs() < 1000.0,
            "beta={}",
            decoded[1].estimate
        );
        // Absent candidates should not beat real ones.
        assert!(decoded[3].estimate < decoded[1].estimate);
        assert!(decoded[4].estimate < decoded[1].estimate);
    }

    #[test]
    fn top_candidates_ordered() {
        let params = RapporParams::new(64, 2, 8, 0.25, 0.35, 0.65).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let agg = simulate(&params, &[(b"big", 7000), (b"small", 2000)], &mut rng);
        let candidates: Vec<&[u8]> = vec![b"small", b"big", b"nope"];
        let top = agg.top_candidates(&candidates);
        assert!(!top.is_empty());
        assert_eq!(top[0].0, 1, "'big' should rank first");
    }

    /// The pre-sparse decode pipeline, reproduced verbatim: dense design
    /// matrix + dense cyclic-sweep LASSO. The production decode must
    /// stay statistically equivalent to this.
    fn decode_dense_reference(
        agg: &RapporAggregator,
        candidates: &[&[u8]],
    ) -> Vec<DecodedCandidate> {
        use ldp_sketch::linalg::lasso;
        let k = agg.params.bloom_bits();
        let m = agg.params.cohorts() as usize;
        let rows = m * k;
        let n_cand = candidates.len();
        let mut x = Matrix::zeros(rows, n_cand);
        for (s, cand) in candidates.iter().enumerate() {
            for i in 0..m {
                let sig = BloomFilter::signature(k, agg.params.hashes(), i as u32, cand);
                for j in sig.ones() {
                    x.set(i * k + j, s, 1.0);
                }
            }
        }
        let t = agg.debiased_bit_counts();
        let mut y = Vec::with_capacity(rows);
        for cohort in &t {
            y.extend_from_slice(cohort);
        }
        let (p_star, q_star) = agg.params.effective_channel();
        let avg_cohort = agg.reports() as f64 / m as f64;
        let noise_sd = (avg_cohort * q_star * (1.0 - q_star)).sqrt() / (q_star - p_star);
        let lambda = noise_sd * (2.0 * (n_cand.max(2) as f64).ln()).sqrt();
        let selected_coefs = lasso(&x, &y, lambda, true, 200, 1e-6);
        let support: Vec<usize> = (0..n_cand).filter(|&s| selected_coefs[s] > 1e-9).collect();
        let mut out: Vec<DecodedCandidate> = (0..n_cand)
            .map(|s| DecodedCandidate {
                candidate: s,
                estimate: 0.0,
                selected: false,
            })
            .collect();
        if support.is_empty() {
            return out;
        }
        let mut xs = Matrix::zeros(rows, support.len());
        for (c_new, &s) in support.iter().enumerate() {
            for r in 0..rows {
                xs.set(r, c_new, x.get(r, s));
            }
        }
        let coefs = least_squares(&xs, &y);
        for (c_new, &s) in support.iter().enumerate() {
            out[s].selected = true;
            out[s].estimate = coefs[c_new] * m as f64;
        }
        out
    }

    #[test]
    fn sparse_decode_statistically_equivalent_to_dense_reference() {
        // Same design matrix, λ, and tolerance — the sparse active-set
        // decode must select the same support and land within the LASSO
        // convergence tolerance of the frozen dense pipeline.
        for seed in [11u64, 29, 31] {
            let params = RapporParams::new(64, 2, 8, 0.25, 0.35, 0.65).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let agg = simulate(
                &params,
                &[(b"alpha", 6000), (b"beta", 3000), (b"gamma", 1000)],
                &mut rng,
            );
            let candidates: Vec<&[u8]> =
                vec![b"alpha", b"beta", b"gamma", b"absent-1", b"absent-2"];
            let sparse = agg.decode(&candidates);
            let dense = decode_dense_reference(&agg, &candidates);
            for (sp, dn) in sparse.iter().zip(&dense) {
                assert_eq!(
                    sp.selected, dn.selected,
                    "seed {seed} candidate {}: support mismatch",
                    sp.candidate
                );
                assert!(
                    (sp.estimate - dn.estimate).abs() < 1e-3 * (1.0 + dn.estimate.abs()),
                    "seed {seed} candidate {}: {} vs {}",
                    sp.candidate,
                    sp.estimate,
                    dn.estimate
                );
            }
        }
    }

    #[test]
    fn empty_candidates_empty_result() {
        let params = RapporParams::small(4).unwrap();
        let agg = RapporAggregator::new(params);
        assert!(agg.decode(&[]).is_empty());
    }

    #[test]
    fn cohorts_fill_roughly_evenly() {
        let params = RapporParams::small(16).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let mut agg = RapporAggregator::new(params.clone());
        for _ in 0..3200 {
            let mut c = RapporClient::with_random_cohort(params.clone(), &mut rng);
            let v: u64 = rng.gen_range(0..10);
            agg.accumulate(&c.report(format!("v{v}").as_bytes(), &mut rng));
        }
        for (i, &n) in agg.cohort_sizes.iter().enumerate() {
            assert!((100..300).contains(&n), "cohort {i} has {n}");
        }
    }

    #[test]
    #[should_panic(expected = "report width mismatch")]
    fn width_mismatch_panics() {
        let params = RapporParams::small(4).unwrap();
        let mut agg = RapporAggregator::new(params);
        let bad = RapporReport {
            cohort: 0,
            bits: ldp_sketch::BitVec::zeros(7),
        };
        agg.accumulate(&bad);
    }
}
