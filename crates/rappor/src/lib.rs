//! # `ldp-rappor` — Google's RAPPOR, reproduced
//!
//! RAPPOR ("Randomized Aggregatable Privacy-Preserving Ordinal Response",
//! Erlingsson–Pihur–Korolova, CCS 2014) was the first Internet-scale LDP
//! deployment: Chrome used it to collect home pages and other settings from
//! millions of clients. The SIGMOD 2018 tutorial presents it as the
//! archetype of the encode–perturb–aggregate pattern:
//!
//! 1. **Encode** — the client hashes its string into a `k`-bit Bloom filter
//!    using its *cohort*'s hash functions ([`ldp_sketch::BloomFilter`]).
//! 2. **Permanent randomized response (PRR)** — each Bloom bit is noised
//!    *once per value, forever* (memoized), bounding the lifetime privacy
//!    loss no matter how many reports are sent ([`client::RapporClient`]).
//! 3. **Instantaneous randomized response (IRR)** — each report re-noises
//!    the memoized bits, defeating longitudinal linking of reports.
//! 4. **Decode** — the aggregator debiases per-cohort bit counts and
//!    regresses them against candidate signatures: non-negative LASSO to
//!    select candidates, then least squares on the survivors
//!    ([`server::RapporAggregator`]).
//!
//! The unknown-dictionary follow-up (Fanti–Pihur–Erlingsson, PETS 2016) is
//! reproduced in [`discovery`]: clients additionally report string
//! *fragments*, letting the server learn frequent strings it never knew to
//! ask about.
//!
//! ## Example
//! ```
//! use ldp_rappor::{RapporParams, RapporClient, RapporAggregator};
//! use rand::SeedableRng;
//!
//! let params = RapporParams::chrome_default(16).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let mut agg = RapporAggregator::new(params.clone());
//! for i in 0..4000u32 {
//!     let url = if i % 2 == 0 { "popular.example" } else { "rare.example" };
//!     let mut client = RapporClient::new(params.clone(), i % params.cohorts(), &mut rng);
//!     let report = client.report(url.as_bytes(), &mut rng);
//!     agg.accumulate(&report);
//! }
//! let candidates: Vec<&[u8]> = vec![b"popular.example", b"rare.example", b"absent.example"];
//! let decoded = agg.decode(&candidates);
//! assert!(decoded[0].estimate > decoded[2].estimate);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod association;
pub mod client;
pub mod discovery;
pub mod params;
pub mod server;
pub mod wire;

pub use association::{AssociationDecoder, JointEstimate};
pub use client::{RapporClient, RapporReport};
pub use discovery::{DiscoveryConfig, NGramDiscovery};
pub use params::RapporParams;
pub use server::{DecodedCandidate, RapporAggregator};
