//! Wire round-trip and adversarial-decode properties for RAPPOR
//! reports, including real client traffic (cohorted, PRR+IRR'd Bloom
//! bits).

use ldp_core::wire::{decode_report, encode_report_vec, WIRE_VERSION};
use ldp_core::LdpError;
use ldp_rappor::{RapporClient, RapporParams, RapporReport};
use ldp_sketch::BitVec;
use proptest::collection::vec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn check_roundtrip(report: &RapporReport) {
    let frame = encode_report_vec(report);
    let back: RapporReport = decode_report(&frame).expect("well-formed frame decodes");
    assert_eq!(&back, report);
    for cut in 0..frame.len() {
        assert!(decode_report::<RapporReport>(&frame[..cut]).is_err());
    }
    let mut bad = frame.clone();
    bad[0] = WIRE_VERSION.wrapping_add(1);
    assert!(matches!(
        decode_report::<RapporReport>(&bad),
        Err(LdpError::VersionMismatch { .. })
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn rappor_report_roundtrips(cohort in any::<u32>(), bools in vec(any::<bool>(), 1..200)) {
        let report = RapporReport {
            cohort,
            bits: BitVec::from_bools(bools.iter().copied()),
        };
        check_roundtrip(&report);
    }

    #[test]
    fn randomized_rappor_traffic_roundtrips(seed in 0u64..500, word in 0u64..64) {
        let params = RapporParams::small(8).expect("params");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut client = RapporClient::with_random_cohort(params, &mut rng);
        let report = client.report(word.to_le_bytes().as_slice(), &mut rng);
        check_roundtrip(&report);
    }

    #[test]
    fn arbitrary_bytes_never_panic(bytes in vec(any::<u8>(), 0..96)) {
        let _ = decode_report::<RapporReport>(&bytes);
    }
}
