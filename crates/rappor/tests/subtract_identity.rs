//! Subtract-inverts-merge contract for the RAPPOR aggregator:
//! `try_subtract(merge(a, b), b)` must restore `a`'s per-cohort bit
//! counters bit-exactly (snapshot BLOB comparison), with atomic refusal
//! on parameter mismatch or oversubtraction — so a sliding window can
//! retire a RAPPOR collection round by exact subtraction.

use ldp_core::snapshot::snapshot_vec;
use ldp_core::LdpError;
use ldp_rappor::{RapporAggregator, RapporClient, RapporParams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn filled(params: &RapporParams, n: usize, rng: &mut StdRng) -> RapporAggregator {
    let mut agg = RapporAggregator::new(params.clone());
    for i in 0..n {
        let mut client = RapporClient::with_random_cohort(params.clone(), rng);
        let word = (i % 16) as u64;
        agg.accumulate(&client.report(word.to_le_bytes().as_slice(), rng));
    }
    agg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn rappor_subtract_inverts_merge(
        seed in any::<u64>(), cohorts in 2u32..16, n_a in 0usize..120, n_b in 0usize..120,
    ) {
        let params = RapporParams::small(cohorts).expect("params");
        let mut rng = StdRng::seed_from_u64(seed);
        let a = filled(&params, n_a, &mut rng);
        let b = filled(&params, n_b, &mut rng);
        let mut merged = a.clone();
        merged.merge(b.clone());

        merged.try_subtract(&b).expect("b is a sub-aggregate");
        prop_assert_eq!(snapshot_vec(&merged), snapshot_vec(&a));
        prop_assert_eq!(merged.reports(), n_a as u64);

        // Oversubtraction refuses atomically: no cohort row moves.
        if n_b > 0 {
            let before = snapshot_vec(&merged);
            let mut oversized = b.clone();
            oversized.merge(b.clone());
            if merged.reports() < oversized.reports() {
                prop_assert!(matches!(
                    merged.try_subtract(&oversized),
                    Err(LdpError::StateMismatch(_))
                ));
                prop_assert_eq!(snapshot_vec(&merged), before);
            }
        }

        // Different Bloom/channel parameters are never a sub-aggregate.
        let other = RapporParams::small(cohorts + 1).expect("params");
        let foreign = RapporAggregator::new(other);
        let before = snapshot_vec(&merged);
        prop_assert!(matches!(
            merged.try_subtract(&foreign),
            Err(LdpError::StateMismatch(_))
        ));
        prop_assert_eq!(snapshot_vec(&merged), before);
    }
}
