//! Snapshot contract for the RAPPOR aggregator:
//! `merge(restore(snapshot(a)), b) == merge(a, b)` bit for bit, and
//! adversarial BLOBs decode to typed errors, never panics.

use ldp_core::snapshot::{restore_from, snapshot_vec, SNAPSHOT_VERSION};
use ldp_core::LdpError;
use ldp_rappor::{RapporAggregator, RapporClient, RapporParams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn filled(params: &RapporParams, n: usize, rng: &mut StdRng) -> RapporAggregator {
    let mut agg = RapporAggregator::new(params.clone());
    for i in 0..n {
        let mut client = RapporClient::with_random_cohort(params.clone(), rng);
        let word = (i % 16) as u64;
        let report = client.report(word.to_le_bytes().as_slice(), rng);
        agg.accumulate(&report);
    }
    agg
}

fn check_adversarial(agg: &mut RapporAggregator, blob: &[u8]) {
    for cut in 0..blob.len() {
        assert!(
            restore_from(agg, &blob[..cut]).is_err(),
            "truncation at {cut} must error"
        );
    }

    let mut bad = blob.to_vec();
    bad[0] = SNAPSHOT_VERSION.wrapping_add(1);
    assert!(matches!(
        restore_from(agg, &bad),
        Err(LdpError::VersionMismatch { .. })
    ));

    let mut bad = blob.to_vec();
    bad[1] = 0xEE; // unassigned tag
    assert!(matches!(
        restore_from(agg, &bad),
        Err(LdpError::ReportTypeMismatch { .. })
    ));

    for i in 0..blob.len() {
        for flip in [0x01u8, 0x80, 0xff] {
            let mut bad = blob.to_vec();
            bad[i] ^= flip;
            let _ = restore_from(agg, &bad); // must not panic
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn rappor_snapshot_contract(seed in any::<u64>(), cohorts in 2u32..16) {
        let params = RapporParams::small(cohorts).expect("params");
        let mut rng = StdRng::seed_from_u64(seed);
        let a = filled(&params, 150, &mut rng);
        let b = filled(&params, 100, &mut rng);

        let blob = snapshot_vec(&a);
        let mut restored = RapporAggregator::new(params.clone());
        restore_from(&mut restored, &blob).expect("well-formed snapshot restores");
        prop_assert_eq!(snapshot_vec(&restored), blob.clone());

        let mut via_bytes = restored;
        via_bytes.merge(b.clone());
        let mut in_process = a;
        in_process.merge(b);
        prop_assert_eq!(snapshot_vec(&via_bytes), snapshot_vec(&in_process));
        prop_assert_eq!(via_bytes.reports(), in_process.reports());
        for (x, y) in via_bytes
            .debiased_bit_counts()
            .iter()
            .flatten()
            .zip(in_process.debiased_bit_counts().iter().flatten())
        {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }

        let mut fresh = RapporAggregator::new(params.clone());
        check_adversarial(&mut fresh, &blob);
    }

    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
        let params = RapporParams::small(8).expect("params");
        let mut agg = RapporAggregator::new(params);
        let _ = restore_from(&mut agg, &bytes);
    }
}

/// Snapshots are pinned to the RAPPOR parameter set: cohort count and
/// filter shape have to match the live aggregator.
#[test]
fn cross_configuration_snapshots_are_rejected() {
    let mut rng = StdRng::seed_from_u64(23);
    let a = filled(&RapporParams::small(8).expect("params"), 100, &mut rng);
    let blob = snapshot_vec(&a);

    let mut other_cohorts = RapporAggregator::new(RapporParams::small(4).expect("params"));
    assert!(matches!(
        restore_from(&mut other_cohorts, &blob),
        Err(LdpError::StateMismatch(_))
    ));
    let mut chrome = RapporAggregator::new(RapporParams::chrome_default(8).expect("params"));
    assert!(matches!(
        restore_from(&mut chrome, &blob),
        Err(LdpError::StateMismatch(_))
    ));
}
