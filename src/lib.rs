//! # `ldp` — Local Differential Privacy at Scale
//!
//! A comprehensive Rust reproduction of the systems surveyed in the SIGMOD
//! 2018 tutorial *"Privacy at Scale: Local Differential Privacy in
//! Practice"* (Cormode, Kulkarni, Srivastava).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — ε-LDP foundations: randomized response, frequency oracles
//!   (GRR/SUE/OUE/SHE/THE/BLH/OLH/Hadamard response), numeric mechanisms,
//!   privacy accounting, the estimation toolkit (unbiasedness, variance,
//!   confidence bounds), and the deployment seam: protocol descriptors +
//!   the runtime mechanism registry ([`core::protocol`]) and the binary
//!   wire format with its type-erased collection API ([`core::wire`]).
//! * [`sketch`] — the data-structure substrate: hashing, Bloom filters,
//!   count sketches, the fast Walsh–Hadamard transform, and the regression
//!   toolkit used for decoding.
//! * [`rappor`] — Google's RAPPOR (CCS 2014) and the unknown-dictionary
//!   extension.
//! * [`apple`] — Apple's Count-Mean Sketch / Hadamard CMS stack and the
//!   Sequence Fragment Puzzle.
//! * [`microsoft`] — Microsoft's telemetry collection (1BitMean, dBitFlip,
//!   α-point rounding with memoization).
//! * [`analytics`] — heavy hitters, marginals, spatial aggregation, graph
//!   statistics, the hybrid (BLENDER-style) model, central-DP baselines,
//!   and multi-round protocols.
//! * [`workloads`] — synthetic workload generators, accuracy metrics, the
//!   experiment harness used by the `ldp-bench` reproduction binaries,
//!   and the deployment-facing [`CollectorService`].
//! * [`planner`] — the cost-based mechanism planner: give it a
//!   [`planner::WorkloadSpec`] (domain, population, ε, budgets) and it
//!   returns ranked, validated [`planner::Plan`]s whose descriptors
//!   instantiate through [`workspace_registry`] unchanged.
//!
//! ## Quickstart: a client/server round trip over bytes
//!
//! Deployed LDP is a wire protocol: the operator ships a versioned
//! config, clients transmit opaque randomized frames, and a collector
//! aggregates without ever seeing a raw value. The workspace mirrors
//! that shape end to end:
//!
//! ```
//! use ldp::core::protocol::{MechanismKind, ProtocolDescriptor};
//! use ldp::workloads::service::{CollectorService, WireClient};
//! use rand::SeedableRng;
//!
//! // The operator's config — serializable, versioned, validated.
//! let descriptor = ProtocolDescriptor::builder(MechanismKind::CohortLocalHashing)
//!     .domain_size(64)
//!     .epsilon(1.0)
//!     .cohorts(256)
//!     .build()
//!     .unwrap();
//!
//! // 10k clients randomize locally and emit wire frames (~6 bytes each).
//! let client = WireClient::from_descriptor(&descriptor).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let mut wire = Vec::new();
//! for user in 0..10_000u64 {
//!     let value = user % 64; // the user's private value
//!     client.randomize_item(value, &mut rng, &mut wire).unwrap();
//! }
//!
//! // The collector ingests bytes and snapshots unbiased estimates; a
//! // malformed frame is an error, never a panic.
//! let mut service = CollectorService::from_descriptor(&descriptor).unwrap();
//! assert_eq!(service.ingest_concat(&wire).unwrap(), 10_000);
//! assert!(service.ingest(&[0xde, 0xad, 0xbe, 0xef]).is_err());
//! let estimates = service.estimates();
//! // Every value occurs ~156 times; estimates are unbiased around that.
//! assert!((estimates[0] - 156.25).abs() < 1000.0);
//!
//! // Collector state is durable: checkpoint, revive, and the revived
//! // service is byte-identical — kill/restore mid-round costs nothing.
//! let checkpoint = service.checkpoint(); // descriptor + versioned state BLOB
//! let revived = CollectorService::from_checkpoint(&checkpoint).unwrap();
//! assert_eq!(revived.estimates(), estimates);
//! ```
//!
//! The in-process face of the same engine — generic
//! [`core::fo::FrequencyOracle`]s, the fused batch paths, and the
//! sharded parallel collector in [`workloads`] — remains available for
//! simulations and experiments, and the byte path above is bit-identical
//! to it for the same seeds (see `tests/service_dispatch.rs`).
//!
//! ## Don't pick the mechanism by hand: plan it
//!
//! Fourteen mechanism kinds trade accuracy, memory, report size, and
//! decode latency against each other. The planner owns those trade-offs:
//! describe the workload and its budgets, and the top-ranked plan drops
//! into the same wire path as the hand-picked descriptor above:
//!
//! ```
//! use ldp::planner::{workspace_planner, WorkloadSpec};
//! use ldp::workloads::service::{CollectorService, WireClient};
//! use rand::SeedableRng;
//!
//! // The workload: 64 items, 10k reports at ε = 1, server state under
//! // 64 KiB, frames under 16 bytes, exact window retirement required.
//! let spec = WorkloadSpec::new(64, 10_000, 1.0)
//!     .with_memory_budget(64 * 1024)
//!     .with_report_budget(16)
//!     .with_subtractive();
//!
//! // Plan → descriptor: tuned knobs, budgets respected, instantiation
//! // guaranteed through the workspace registry.
//! let plan = workspace_planner().best(&spec).unwrap();
//! assert!(plan.cost.bytes_per_report <= 16);
//!
//! // The planned descriptor rides the byte path unchanged.
//! let client = WireClient::from_descriptor(&plan.descriptor).unwrap();
//! let mut service = CollectorService::from_descriptor(&plan.descriptor).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(11);
//! let mut wire = Vec::new();
//! for user in 0..10_000u64 {
//!     client.randomize_item(user % 64, &mut rng, &mut wire).unwrap();
//! }
//! assert_eq!(service.ingest_concat(&wire).unwrap(), 10_000);
//! let estimates = service.estimates();
//! assert!((estimates[0] - 156.25).abs() < 5.0 * plan.cost.variance.sqrt());
//! ```

pub use ldp_analytics as analytics;
pub use ldp_apple as apple;
pub use ldp_core as core;
pub use ldp_microsoft as microsoft;
pub use ldp_planner as planner;
pub use ldp_rappor as rappor;
pub use ldp_sketch as sketch;
pub use ldp_workloads as workloads;

pub use ldp_core::protocol::{MechanismKind, ProtocolDescriptor, Registry};
pub use ldp_workloads::service::{workspace_registry, CollectorService, WireClient};
