//! # `ldp` — Local Differential Privacy at Scale
//!
//! A comprehensive Rust reproduction of the systems surveyed in the SIGMOD
//! 2018 tutorial *"Privacy at Scale: Local Differential Privacy in
//! Practice"* (Cormode, Kulkarni, Srivastava).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — ε-LDP foundations: randomized response, frequency oracles
//!   (GRR/SUE/OUE/SHE/THE/BLH/OLH/Hadamard response), numeric mechanisms,
//!   privacy accounting, and the estimation toolkit (unbiasedness, variance,
//!   confidence bounds).
//! * [`sketch`] — the data-structure substrate: hashing, Bloom filters,
//!   count sketches, the fast Walsh–Hadamard transform, and the regression
//!   toolkit used for decoding.
//! * [`rappor`] — Google's RAPPOR (CCS 2014) and the unknown-dictionary
//!   extension.
//! * [`apple`] — Apple's Count-Mean Sketch / Hadamard CMS stack and the
//!   Sequence Fragment Puzzle.
//! * [`microsoft`] — Microsoft's telemetry collection (1BitMean, dBitFlip,
//!   α-point rounding with memoization).
//! * [`analytics`] — heavy hitters, marginals, spatial aggregation, graph
//!   statistics, the hybrid (BLENDER-style) model, central-DP baselines,
//!   and multi-round protocols.
//! * [`workloads`] — synthetic workload generators, accuracy metrics, and
//!   the experiment harness used by the `ldp-bench` reproduction binaries.
//!
//! ## Quickstart
//!
//! ```
//! use ldp::core::fo::{FoAggregator, FrequencyOracle, OptimizedLocalHashing};
//! use ldp::core::Epsilon;
//! use rand::SeedableRng;
//!
//! // 10k users each hold a value in a domain of 64 items; the aggregator
//! // learns the histogram without any individual report revealing much.
//! let eps = Epsilon::new(1.0).unwrap();
//! let olh = OptimizedLocalHashing::new(64, eps);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//!
//! let mut agg = olh.new_aggregator();
//! for user in 0..10_000u64 {
//!     let value = user % 64; // the user's private value
//!     let report = olh.randomize(value, &mut rng);
//!     agg.accumulate(&report);
//! }
//! let estimates = agg.estimate();
//! // Every value occurs ~156 times; estimates are unbiased around that,
//! // within the mechanism's noise (sd ≈ 192 at these parameters).
//! let sd = olh.noise_floor_variance(10_000).sqrt();
//! assert!((estimates[0] - 156.25).abs() < 5.0 * sd);
//! ```

pub use ldp_analytics as analytics;
pub use ldp_apple as apple;
pub use ldp_core as core;
pub use ldp_microsoft as microsoft;
pub use ldp_rappor as rappor;
pub use ldp_sketch as sketch;
pub use ldp_workloads as workloads;
