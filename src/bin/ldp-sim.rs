//! `ldp-sim` — a command-line simulator for the workspace's frequency
//! oracles.
//!
//! ```text
//! Usage: ldp-sim [--mechanism grr|sue|oue|she|the|blh|olh|hr|ss]
//!                [--eps <f64>] [--domain <u64>] [--users <usize>]
//!                [--zipf <f64>] [--seed <u64>] [--top <usize>]
//! ```
//!
//! Simulates a population, runs the chosen mechanism end to end, and
//! prints estimated-vs-true counts with error diagnostics — the fastest
//! way to get a feel for the accuracy/ε/domain trade-offs the tutorial
//! teaches. Defaults: OLH, ε=1, d=64, 50k users, Zipf 1.1.

use ldp::core::fo::{
    collect_counts, BinaryLocalHashing, DirectEncoding, FrequencyOracle, HadamardResponse,
    OptimizedLocalHashing, OptimizedUnaryEncoding, SubsetSelection, SummationHistogramEncoding,
    SymmetricUnaryEncoding, ThresholdHistogramEncoding,
};
use ldp::core::Epsilon;
use ldp::workloads::gen::{exact_counts, ZipfGenerator};
use ldp::workloads::metrics;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[derive(Debug)]
struct Args {
    mechanism: String,
    eps: f64,
    domain: u64,
    users: usize,
    zipf: f64,
    seed: u64,
    top: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        mechanism: "olh".into(),
        eps: 1.0,
        domain: 64,
        users: 50_000,
        zipf: 1.1,
        seed: 42,
        top: 10,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let key = argv[i].as_str();
        if key == "--help" || key == "-h" {
            return Err("help".into());
        }
        let value = argv
            .get(i + 1)
            .ok_or_else(|| format!("missing value for {key}"))?;
        match key {
            "--mechanism" => args.mechanism = value.to_lowercase(),
            "--eps" => args.eps = value.parse().map_err(|e| format!("--eps: {e}"))?,
            "--domain" => args.domain = value.parse().map_err(|e| format!("--domain: {e}"))?,
            "--users" => args.users = value.parse().map_err(|e| format!("--users: {e}"))?,
            "--zipf" => args.zipf = value.parse().map_err(|e| format!("--zipf: {e}"))?,
            "--seed" => args.seed = value.parse().map_err(|e| format!("--seed: {e}"))?,
            "--top" => args.top = value.parse().map_err(|e| format!("--top: {e}"))?,
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    Ok(args)
}

fn run<O: FrequencyOracle>(oracle: O, args: &Args) {
    let zipf = ZipfGenerator::new(args.domain, args.zipf).expect("valid zipf");
    let mut rng = StdRng::seed_from_u64(args.seed);
    let values = zipf.sample_n(args.users, &mut rng);
    let truth = exact_counts(&values, args.domain);
    let start = std::time::Instant::now();
    let est = collect_counts(&oracle, &values, &mut rng);
    let elapsed = start.elapsed();

    println!(
        "{} | ε={} | d={} | n={} | Zipf({}) | report = {} bits | {:?}",
        oracle.name(),
        args.eps,
        args.domain,
        args.users,
        args.zipf,
        oracle.report_bits(),
        elapsed
    );
    let sd = oracle.noise_floor_variance(args.users).sqrt();
    println!("analytic noise sd ≈ {sd:.1} counts\n");
    println!(
        "{:>6} {:>12} {:>12} {:>8}",
        "item", "true", "estimate", "err/sd"
    );
    for i in 0..args.top.min(args.domain as usize) {
        println!(
            "{:>6} {:>12.0} {:>12.0} {:>8.2}",
            i,
            truth[i],
            est[i],
            (est[i] - truth[i]) / sd
        );
    }
    println!(
        "\nMSE {:.0} | MAE {:.1} | max err {:.1} | top-{} F1 {:.2}",
        metrics::mse(&est, &truth),
        metrics::mae(&est, &truth),
        metrics::max_error(&est, &truth),
        args.top,
        metrics::top_k_metrics(&est, &truth, args.top).f1,
    );
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg != "help" {
                eprintln!("error: {msg}\n");
            }
            eprintln!(
                "usage: ldp-sim [--mechanism grr|sue|oue|she|the|blh|olh|hr|ss] \
                 [--eps F] [--domain D] [--users N] [--zipf S] [--seed K] [--top T]"
            );
            std::process::exit(if msg == "help" { 0 } else { 2 });
        }
    };
    let eps = match Epsilon::new(args.eps) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    match args.mechanism.as_str() {
        "grr" => run(
            DirectEncoding::new(args.domain, eps).expect("domain >= 2"),
            &args,
        ),
        "sue" => run(
            SymmetricUnaryEncoding::new(args.domain, eps).expect("domain >= 2"),
            &args,
        ),
        "oue" => run(
            OptimizedUnaryEncoding::new(args.domain, eps).expect("domain >= 2"),
            &args,
        ),
        "she" => run(
            SummationHistogramEncoding::new(args.domain, eps).expect("domain >= 2"),
            &args,
        ),
        "the" => run(
            ThresholdHistogramEncoding::new(args.domain, eps).expect("domain >= 2"),
            &args,
        ),
        "blh" => run(BinaryLocalHashing::new(args.domain, eps), &args),
        "olh" => run(OptimizedLocalHashing::new(args.domain, eps), &args),
        "hr" => run(HadamardResponse::new(args.domain, eps), &args),
        "ss" => run(SubsetSelection::new(args.domain, eps), &args),
        other => {
            eprintln!("error: unknown mechanism '{other}'");
            std::process::exit(2);
        }
    }
}
