//! `ldp-sim` — a command-line simulator for the workspace's frequency
//! oracles.
//!
//! ```text
//! Usage: ldp-sim [--mechanism grr|sue|oue|she|the|blh|olh|hr|ss]
//!                [--eps <f64>] [--domain <u64>] [--users <usize>]
//!                [--zipf <f64>] [--seed <u64>] [--top <usize>]
//!                [--scenario oracle|pipeline|windows|plan] [--workers <usize>]
//!                [--shards <usize>] [--queue-depth <usize>]
//!                [--policy block|drop]
//! ```
//!
//! Simulates a population, runs the chosen mechanism end to end, and
//! prints estimated-vs-true counts with error diagnostics — the fastest
//! way to get a feel for the accuracy/ε/domain trade-offs the tutorial
//! teaches. Defaults: OLH, ε=1, d=64, 50k users, Zipf 1.1.
//!
//! `--scenario pipeline` instead streams the population as serialized
//! wire frames through the concurrent collector pipeline (OLH-C over
//! the byte path): fused client-side frame writing, bounded-queue
//! ingest workers, and a shard-order merge, with per-worker
//! throughput/queue statistics. Defaults to 10M frames (`--users`
//! scales it down for CI smoke runs).
//!
//! `--scenario plan` sweeps the cost-based mechanism planner over a
//! grid of `(d, n, ε, memory budget)` cells: each cell is planned, the
//! top pick and the runner-up both execute end to end through the wire
//! path (client frames → collector service → estimates), and the
//! measured-error ranking is checked against the planner's predicted
//! ranking. `--users` sets reports per cell (default 30k).
//!
//! `--scenario windows` replays a bursty three-day synthetic trace
//! (hourly event-time buckets, evening peaks, overnight lulls, stale
//! stragglers) through the collector pipeline into a sliding
//! [`WindowRing`] with a 24-hour horizon: each hour's delta is absorbed
//! into its window and the running total, expired windows retire by
//! exact subtraction, per-device ε spend is metered by a rolling
//! [`LongitudinalAccountant`], and the whole ring checkpoint/restores
//! at the end. `--users` sets total trace frames (default 500k).

use ldp::core::fo::{
    collect_counts, BinaryLocalHashing, DirectEncoding, FrequencyOracle, HadamardResponse,
    OptimizedLocalHashing, OptimizedUnaryEncoding, SubsetSelection, SummationHistogramEncoding,
    SymmetricUnaryEncoding, ThresholdHistogramEncoding,
};
use ldp::core::protocol::{MechanismKind, ProtocolDescriptor};
use ldp::core::Epsilon;
use ldp::workloads::gen::{exact_counts, ZipfGenerator};
use ldp::workloads::metrics;
use ldp::workloads::pipeline::{
    stream_population, BackpressurePolicy, CollectorPipeline, PipelineConfig,
};
use ldp::workloads::service::{CollectorService, WireClient};
use ldp::workloads::window::{LongitudinalAccountant, WindowConfig, WindowRing};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[derive(Debug)]
struct Args {
    mechanism: String,
    eps: f64,
    domain: u64,
    // None = scenario default (50k oracle / 10M pipeline).
    users: Option<usize>,
    zipf: f64,
    seed: u64,
    top: usize,
    scenario: String,
    workers: usize,
    shards: usize,
    queue_depth: usize,
    policy: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        mechanism: "olh".into(),
        eps: 1.0,
        domain: 64,
        users: None,
        zipf: 1.1,
        seed: 42,
        top: 10,
        scenario: "oracle".into(),
        workers: 4,
        shards: 1024,
        queue_depth: 64,
        policy: "block".into(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let key = argv[i].as_str();
        if key == "--help" || key == "-h" {
            return Err("help".into());
        }
        let value = argv
            .get(i + 1)
            .ok_or_else(|| format!("missing value for {key}"))?;
        match key {
            "--mechanism" => args.mechanism = value.to_lowercase(),
            "--eps" => args.eps = value.parse().map_err(|e| format!("--eps: {e}"))?,
            "--domain" => args.domain = value.parse().map_err(|e| format!("--domain: {e}"))?,
            "--users" => args.users = Some(value.parse().map_err(|e| format!("--users: {e}"))?),
            "--zipf" => args.zipf = value.parse().map_err(|e| format!("--zipf: {e}"))?,
            "--seed" => args.seed = value.parse().map_err(|e| format!("--seed: {e}"))?,
            "--top" => args.top = value.parse().map_err(|e| format!("--top: {e}"))?,
            "--scenario" => args.scenario = value.to_lowercase(),
            "--workers" => args.workers = value.parse().map_err(|e| format!("--workers: {e}"))?,
            "--shards" => args.shards = value.parse().map_err(|e| format!("--shards: {e}"))?,
            "--queue-depth" => {
                args.queue_depth = value.parse().map_err(|e| format!("--queue-depth: {e}"))?;
            }
            "--policy" => args.policy = value.to_lowercase(),
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    Ok(args)
}

fn run<O: FrequencyOracle>(oracle: O, args: &Args) {
    let users = args.users.unwrap_or(50_000);
    let zipf = ZipfGenerator::new(args.domain, args.zipf).expect("valid zipf");
    let mut rng = StdRng::seed_from_u64(args.seed);
    let values = zipf.sample_n(users, &mut rng);
    let truth = exact_counts(&values, args.domain);
    let start = std::time::Instant::now();
    let est = collect_counts(&oracle, &values, &mut rng);
    let elapsed = start.elapsed();

    println!(
        "{} | ε={} | d={} | n={} | Zipf({}) | report = {} bits | {:?}",
        oracle.name(),
        args.eps,
        args.domain,
        users,
        args.zipf,
        oracle.report_bits(),
        elapsed
    );
    let sd = oracle.noise_floor_variance(users).sqrt();
    println!("analytic noise sd ≈ {sd:.1} counts\n");
    println!(
        "{:>6} {:>12} {:>12} {:>8}",
        "item", "true", "estimate", "err/sd"
    );
    for i in 0..args.top.min(args.domain as usize) {
        println!(
            "{:>6} {:>12.0} {:>12.0} {:>8.2}",
            i,
            truth[i],
            est[i],
            (est[i] - truth[i]) / sd
        );
    }
    println!(
        "\nMSE {:.0} | MAE {:.1} | max err {:.1} | top-{} F1 {:.2}",
        metrics::mse(&est, &truth),
        metrics::mae(&est, &truth),
        metrics::max_error(&est, &truth),
        args.top,
        metrics::top_k_metrics(&est, &truth, args.top).f1,
    );
}

/// The `--scenario pipeline` path: stream a synthetic population as
/// serialized OLH-C wire frames through the concurrent collector
/// pipeline, then print per-worker throughput, queue pressure, merge
/// cost, and estimate accuracy.
fn run_pipeline(args: &Args) -> Result<(), String> {
    let frames = args.users.unwrap_or(10_000_000);
    let policy = match args.policy.as_str() {
        "block" => BackpressurePolicy::Block,
        "drop" => BackpressurePolicy::DropNewest,
        other => return Err(format!("unknown policy '{other}' (block|drop)")),
    };
    let desc = ProtocolDescriptor::builder(MechanismKind::CohortLocalHashing)
        .domain_size(args.domain)
        .epsilon(args.eps)
        .cohorts(64)
        .build()
        .map_err(|e| format!("descriptor: {e}"))?;
    let client = WireClient::from_descriptor(&desc).map_err(|e| format!("client: {e}"))?;
    let shards = args.shards.min(frames.max(1));
    let pipeline = CollectorPipeline::new(
        &desc,
        PipelineConfig {
            shards,
            workers: args.workers,
            queue_depth: args.queue_depth,
            policy,
        },
    )
    .map_err(|e| format!("pipeline: {e}"))?;
    let workers = pipeline.workers();

    let zipf = ZipfGenerator::new(args.domain, args.zipf).map_err(|e| format!("zipf: {e}"))?;
    let mut rng = StdRng::seed_from_u64(args.seed);
    let values = zipf.sample_n(frames, &mut rng);
    let truth = exact_counts(&values, args.domain);

    let start = std::time::Instant::now();
    let accepted = stream_population(&client, &pipeline, &values, args.seed, 4)
        .map_err(|e| format!("stream: {e}"))?;
    let (service, stats) = pipeline.finish().map_err(|e| format!("finish: {e}"))?;
    let elapsed = start.elapsed();

    println!(
        "pipeline | OLH-C | ε={} | d={} | frames={} | shards={} | workers={} | \
         queue={} | policy={}",
        args.eps, args.domain, frames, shards, workers, args.queue_depth, args.policy
    );
    println!(
        "wall {:?} | {:.0} frames/s end-to-end | merge {:.2} ms | accepted {accepted}",
        elapsed,
        accepted as f64 / elapsed.as_secs_f64(),
        stats.merge_nanos as f64 / 1e6,
    );
    for (i, w) in stats.workers.iter().enumerate() {
        println!(
            "  worker {i}: {} frames in {} batches | busy {:.1} ms | \
             {:.0} frames/s | queue hwm {} | dropped {}",
            w.frames,
            w.batches,
            w.busy_nanos as f64 / 1e6,
            w.frames_per_sec(),
            w.queue_hwm,
            w.dropped_batches,
        );
    }
    println!(
        "ingested {} frames | queue hwm {} | dropped batches {}",
        stats.total_frames(),
        stats.queue_hwm(),
        stats.dropped_batches(),
    );

    let est = service.estimates();
    println!(
        "MSE {:.0} | MAE {:.1} | max err {:.1} | top-{} F1 {:.2}",
        metrics::mse(&est, &truth),
        metrics::mae(&est, &truth),
        metrics::max_error(&est, &truth),
        args.top,
        metrics::top_k_metrics(&est, &truth, args.top).f1,
    );
    Ok(())
}

/// Executes one planned descriptor end to end through the wire path and
/// returns the measured MSE over the **tail half** of the domain (items
/// at or below the median true count). The planner ranks on noise-floor
/// σ² — the variance of a *rare* item's estimate — so the measured
/// yardstick is the same quantity, not the head items whose error is
/// dominated by frequency-dependent terms every floor formula ignores.
fn execute_plan_arm(
    plan: &ldp::planner::Plan,
    values: &[u64],
    truth: &[f64],
    seed: u64,
    trials: u64,
) -> Result<f64, String> {
    let client =
        WireClient::from_descriptor(&plan.descriptor).map_err(|e| format!("client: {e}"))?;
    let mut sorted: Vec<f64> = truth.to_vec();
    sorted.sort_by(f64::total_cmp);
    let median = sorted[sorted.len() / 2];

    let mut mse_sum = 0.0f64;
    for t in 0..trials.max(1) {
        let mut service = CollectorService::from_descriptor(&plan.descriptor)
            .map_err(|e| format!("service: {e}"))?;
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(t.wrapping_mul(0x9e37_79b9)));
        let mut wire = Vec::new();
        for &v in values {
            client
                .randomize_item(v, &mut rng, &mut wire)
                .map_err(|e| format!("frame: {e}"))?;
        }
        service
            .ingest_concat(&wire)
            .map_err(|e| format!("ingest: {e}"))?;
        let est = service.estimates();

        let (mut sse, mut count) = (0.0f64, 0usize);
        for (e, t) in est.iter().zip(truth) {
            if *t <= median {
                sse += (e - t) * (e - t);
                count += 1;
            }
        }
        mse_sum += sse / count.max(1) as f64;
    }
    Ok(mse_sum / trials.max(1) as f64)
}

/// The `--scenario plan` path: sweep the planner over a
/// `(d, n, ε, memory budget)` grid, execute each cell's top pick and
/// runner-up over the byte path, and score predicted-vs-measured error
/// ranking agreement.
fn run_plan(args: &Args) -> Result<(), String> {
    use ldp::planner::{workspace_planner, WorkloadSpec};

    let n = args.users.unwrap_or(30_000);
    let planner = workspace_planner();
    let domains = [64u64, 256, 1024];
    let epsilons = [0.5f64, 1.0, 2.0];
    // Budget profiles exercise different planner regimes: unconstrained
    // accuracy chasing, a memory wall that forces sketches/cohorts at
    // large d, and a wire cap that forces compact report formats.
    let profiles: [(&str, Option<u64>, Option<u64>); 3] = [
        ("roomy", Some(1024 * 1024), None),
        ("tight-mem", Some(4 * 1024), None),
        ("tight-wire", Some(1024 * 1024), Some(8)),
    ];

    println!(
        "plan | grid: d×ε×budget = {}×{}×{} cells | n={n} per cell | Zipf({})",
        domains.len(),
        epsilons.len(),
        profiles.len(),
        args.zipf,
    );
    println!(
        "{:>5} {:>5} {:>10} | {:>9} {:>12} {:>12} | {:>9} {:>12} {:>12} | agree",
        "d", "ε", "budget", "top", "pred σ²", "meas MSE", "next", "pred σ²", "meas MSE"
    );

    let mut cells = 0usize;
    let mut agreements = 0usize;
    let mut plan_nanos = 0u128;
    let mut grid = Vec::new();
    for &d in &domains {
        for &eps in &epsilons {
            for &profile in &profiles {
                grid.push((d, eps, profile));
            }
        }
    }
    for (ci, &(d, eps, (label, mem, wire_cap))) in grid.iter().enumerate() {
        let mut spec = WorkloadSpec::new(d, n as u64, eps);
        if let Some(m) = mem {
            spec = spec.with_memory_budget(m);
        }
        if let Some(w) = wire_cap {
            spec = spec.with_report_budget(w);
        }
        let started = std::time::Instant::now();
        let plans = planner.plan(&spec).map_err(|e| format!("plan: {e}"))?;
        plan_nanos += started.elapsed().as_nanos();
        if plans.len() < 2 {
            return Err(format!("cell d={d} ε={eps} {label}: fewer than 2 plans"));
        }
        for p in &plans {
            if mem.is_some_and(|m| p.cost.memory_bytes > m)
                || wire_cap.is_some_and(|w| p.cost.bytes_per_report > w)
            {
                return Err(format!(
                    "cell d={d} ε={eps} {label}: {} blew a budget",
                    p.kind().name()
                ));
            }
        }
        // Runner-up: the first plan meaningfully separated in predicted
        // σ² (rank 2 when the whole field is tied) — ranking two
        // near-identical predictions is a coin flip by construction.
        let top = &plans[0];
        let next = plans[1..]
            .iter()
            .find(|p| p.cost.variance >= 1.1 * top.cost.variance)
            .unwrap_or(&plans[1]);

        let zipf = ZipfGenerator::new(d, args.zipf).map_err(|e| format!("zipf: {e}"))?;
        let mut rng = StdRng::seed_from_u64(args.seed ^ ci as u64);
        let values = zipf.sample_n(n, &mut rng);
        let truth = exact_counts(&values, d);
        // A few repetitions per arm average away single-draw luck so the
        // comparison reflects the mechanisms, not one RNG stream.
        let trials = 3;
        let mse_top = execute_plan_arm(
            top,
            &values,
            &truth,
            args.seed.wrapping_add(ci as u64),
            trials,
        )?;
        let mse_next = execute_plan_arm(
            next,
            &values,
            &truth,
            args.seed.wrapping_add(1000 + ci as u64),
            trials,
        )?;

        // The planner predicted top ≤ next in σ²; the measured errors
        // agree when the executed MSEs rank the same way.
        let agree = mse_top <= mse_next;
        cells += 1;
        agreements += usize::from(agree);
        println!(
            "{:>5} {:>5} {:>10} | {:>9} {:>12.1} {:>12.1} | {:>9} {:>12.1} {:>12.1} | {}",
            d,
            eps,
            label,
            top.kind().name(),
            top.cost.variance,
            mse_top,
            next.kind().name(),
            next.cost.variance,
            mse_next,
            if agree { "yes" } else { "NO" },
        );
    }
    let fraction = agreements as f64 / cells as f64;
    println!(
        "\nranking agreement {agreements}/{cells} ({:.0}%) | mean plan time {:.1} µs",
        fraction * 100.0,
        plan_nanos as f64 / cells as f64 / 1e3,
    );
    // Near-ties can flip under sampling noise; total disagreement means
    // the cost book is wrong.
    if fraction < 0.5 {
        return Err(format!(
            "measured rankings disagree with predictions in {}/{cells} cells",
            cells - agreements
        ));
    }
    Ok(())
}

/// The `--scenario windows` path: a bursty multi-day trace through the
/// collector pipeline into a 24-hour sliding window ring, with rolling
/// per-device longitudinal accounting and a final checkpoint/restore.
fn run_windows(args: &Args) -> Result<(), String> {
    const DAYS: usize = 3;
    const HOURS: usize = DAYS * 24;
    const WINDOW_LEN: u64 = 3600;
    const HORIZON: usize = 24;

    let total_frames = args.users.unwrap_or(500_000);
    // Diurnal burst profile: overnight lull, daytime baseline, a 4×
    // evening peak — the "popular items over the last 24 hours" shape.
    let hour_weight = |hour_of_day: usize| -> f64 {
        match hour_of_day {
            0..=5 => 0.3,
            18..=21 => 4.0,
            _ => 1.0,
        }
    };
    let weight_sum: f64 = (0..HOURS).map(|h| hour_weight(h % 24)).sum();

    let desc = ProtocolDescriptor::builder(MechanismKind::CohortLocalHashing)
        .domain_size(args.domain)
        .epsilon(args.eps)
        .cohorts(64)
        .build()
        .map_err(|e| format!("descriptor: {e}"))?;
    let client = WireClient::from_descriptor(&desc).map_err(|e| format!("client: {e}"))?;
    let mut ring = WindowRing::new(
        &desc,
        WindowConfig::new(WINDOW_LEN, HORIZON).with_decay(0.9),
    )
    .map_err(|e| format!("ring: {e}"))?;

    // Rolling per-device ledger: each contributed window costs the
    // report ε and a device may spend at most 8 windows' worth inside
    // any 24-hour horizon. The pool is sized so devices want slightly
    // more than that — the accountant must throttle the tail of each
    // day once budgets run dry.
    let per_window = Epsilon::new(args.eps).map_err(|e| format!("eps: {e}"))?;
    let allowance = Epsilon::new(args.eps * 8.0).map_err(|e| format!("allowance: {e}"))?;
    let mut accountant = LongitudinalAccountant::new(allowance, per_window, HORIZON)
        .map_err(|e| format!("accountant: {e}"))?;
    let device_pool = (total_frames / 27).max(32);

    let zipf = ZipfGenerator::new(args.domain, args.zipf).map_err(|e| format!("zipf: {e}"))?;
    let mut rng = StdRng::seed_from_u64(args.seed);
    // Exact counts per hour; only the last HORIZON hours stay queued, so
    // the fold at the end is ground truth for the sliding window.
    let mut hour_truth: std::collections::VecDeque<Vec<f64>> = std::collections::VecDeque::new();
    let mut throttled = 0usize;
    let mut next_device = 0usize;

    println!(
        "windows | OLH-C | ε={} | d={} | {DAYS} days × hourly buckets | horizon {HORIZON} h | \
         ~{total_frames} frames | {device_pool} devices | per-device cap 8ε/24h",
        args.eps, args.domain
    );
    let start = std::time::Instant::now();
    for hour in 0..HOURS {
        let t = hour as u64 * WINDOW_LEN + WINDOW_LEN / 2;
        let bucket = t / WINDOW_LEN;
        let target = (total_frames as f64 * hour_weight(hour % 24) / weight_sum).round() as usize;

        // Devices volunteer round-robin; the accountant throttles any
        // whose rolling-horizon budget is spent.
        let mut values = Vec::with_capacity(target);
        for _ in 0..target {
            let device = next_device as u64;
            next_device = (next_device + 1) % device_pool;
            if accountant.try_charge(device, bucket).is_ok() {
                values.push(zipf.sample(&mut rng));
            } else {
                throttled += 1;
            }
        }
        hour_truth.push_back(exact_counts(&values, args.domain));
        if hour_truth.len() > HORIZON {
            hour_truth.pop_front();
        }

        if values.is_empty() {
            // Budgets ran dry this hour: the watermark still advances.
            ring.advance_to(t).map_err(|e| format!("advance: {e}"))?;
        } else {
            // One pipeline round per collection hour, absorbed as a delta.
            let shards = args.shards.min(values.len()).max(1);
            let pipeline = CollectorPipeline::new(
                &desc,
                PipelineConfig {
                    shards,
                    workers: args.workers,
                    queue_depth: args.queue_depth,
                    policy: BackpressurePolicy::Block,
                },
            )
            .map_err(|e| format!("pipeline: {e}"))?;
            stream_population(&client, &pipeline, &values, args.seed ^ hour as u64, 4)
                .map_err(|e| format!("stream: {e}"))?;
            let (delta, _) = pipeline.finish().map_err(|e| format!("finish: {e}"))?;
            ring.absorb(t, delta).map_err(|e| format!("absorb: {e}"))?;
        }

        // A stale straggler from >24 h ago arrives once a day and must
        // drop against the watermark, not poison an expired window.
        if hour % 24 == 23 && hour >= 24 {
            let mut frame = Vec::new();
            client
                .randomize_item(0, &mut rng, &mut frame)
                .map_err(|e| format!("frame: {e}"))?;
            let late = (bucket - HORIZON as u64) * WINDOW_LEN;
            if ring
                .ingest(late, &frame)
                .map_err(|e| format!("late: {e}"))?
            {
                return Err("stale frame was accepted past the watermark".into());
            }
        }
        if hour % 24 == 23 {
            let s = ring.stats();
            println!(
                "  day {} done: {} live windows | {} frames in ring | \
                 retired {} by subtract, {} rebuilt | {} late dropped | {throttled} throttled",
                hour / 24 + 1,
                ring.live_windows(),
                ring.reports(),
                s.retired_subtract,
                s.retired_rebuild,
                s.late_dropped,
            );
        }
    }
    let elapsed = start.elapsed();

    let truth = hour_truth
        .iter()
        .fold(vec![0.0f64; args.domain as usize], |mut acc, h| {
            for (a, v) in acc.iter_mut().zip(h) {
                *a += v;
            }
            acc
        });
    let est = ring.estimates();
    let decayed = ring
        .decayed_estimates()
        .map_err(|e| format!("decay: {e}"))?;
    let mut order: Vec<usize> = (0..est.len()).collect();
    order.sort_by(|&a, &b| est[b].total_cmp(&est[a]));
    println!(
        "trace done in {:?} | sliding total covers {} frames over {} windows",
        elapsed,
        ring.reports(),
        ring.live_windows(),
    );
    println!(
        "last-24h MSE {:.0} | MAE {:.1} | top-{} F1 {:.2} | decayed favors recent: \
         item {} at {:.0} (flat {:.0})",
        metrics::mse(&est, &truth),
        metrics::mae(&est, &truth),
        args.top,
        metrics::top_k_metrics(&est, &truth, args.top).f1,
        order[0],
        decayed[order[0]],
        est[order[0]],
    );

    // Durability: the whole ring round-trips through one BLOB.
    let blob = ring.checkpoint();
    let revived = WindowRing::from_checkpoint(&blob).map_err(|e| format!("restore: {e}"))?;
    if revived.checkpoint() != blob {
        return Err("ring checkpoint did not round-trip bit-exactly".into());
    }
    println!(
        "checkpoint {} KiB round-trips bit-exactly | ring stats: {:?}",
        blob.len() / 1024,
        ring.stats(),
    );
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg != "help" {
                eprintln!("error: {msg}\n");
            }
            eprintln!(
                "usage: ldp-sim [--mechanism grr|sue|oue|she|the|blh|olh|hr|ss] \
                 [--eps F] [--domain D] [--users N] [--zipf S] [--seed K] [--top T] \
                 [--scenario oracle|pipeline|windows|plan] [--workers W] [--shards S] \
                 [--queue-depth Q] [--policy block|drop]"
            );
            std::process::exit(if msg == "help" { 0 } else { 2 });
        }
    };
    if args.scenario == "pipeline" {
        if let Err(msg) = run_pipeline(&args) {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
        return;
    }
    if args.scenario == "windows" {
        if let Err(msg) = run_windows(&args) {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
        return;
    }
    if args.scenario == "plan" {
        if let Err(msg) = run_plan(&args) {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
        return;
    }
    if args.scenario != "oracle" {
        eprintln!("error: unknown scenario '{}'", args.scenario);
        std::process::exit(2);
    }
    let eps = match Epsilon::new(args.eps) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    match args.mechanism.as_str() {
        "grr" => run(
            DirectEncoding::new(args.domain, eps).expect("domain >= 2"),
            &args,
        ),
        "sue" => run(
            SymmetricUnaryEncoding::new(args.domain, eps).expect("domain >= 2"),
            &args,
        ),
        "oue" => run(
            OptimizedUnaryEncoding::new(args.domain, eps).expect("domain >= 2"),
            &args,
        ),
        "she" => run(
            SummationHistogramEncoding::new(args.domain, eps).expect("domain >= 2"),
            &args,
        ),
        "the" => run(
            ThresholdHistogramEncoding::new(args.domain, eps).expect("domain >= 2"),
            &args,
        ),
        "blh" => run(BinaryLocalHashing::new(args.domain, eps), &args),
        "olh" => run(OptimizedLocalHashing::new(args.domain, eps), &args),
        "hr" => run(HadamardResponse::new(args.domain, eps), &args),
        "ss" => run(SubsetSelection::new(args.domain, eps), &args),
        other => {
            eprintln!("error: unknown mechanism '{other}'");
            std::process::exit(2);
        }
    }
}
