//! The mechanism planner: describe the workload, get a tuned protocol.
//!
//! Run with: `cargo run --release --example mechanism_planner`
//!
//! Picking an LDP mechanism by hand means trading accuracy, server
//! memory, report bytes, and decode latency across fourteen kinds and
//! their integer knobs (cohorts, hash range, sketch shape, bits per
//! device). The planner owns that search: a [`WorkloadSpec`] states the
//! workload and its budgets, and every returned [`Plan`] carries a
//! descriptor that is already validated, tuned, budget-checked, and
//! instantiable through the workspace registry. This example walks one
//! spec from planning through wire-path collection to estimation, then
//! shows how the ranking shifts when the budgets move.

use ldp::planner::{workspace_planner, WorkloadSpec};
use ldp::workloads::gen::{exact_counts, ZipfGenerator};
use ldp::workloads::metrics;
use ldp::workloads::service::{CollectorService, WireClient};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let planner = workspace_planner();
    let (d, n, eps) = (256u64, 50_000u64, 1.0);

    // --- Plan: a memory-capped, wire-capped, windowed workload. ---
    let spec = WorkloadSpec::new(d, n, eps)
        .with_memory_budget(64 * 1024)
        .with_report_budget(16)
        .with_subtractive();
    let plans = planner.plan(&spec).expect("plannable spec");
    println!("d={d} n={n} ε={eps} | mem ≤ 64 KiB, report ≤ 16 B, subtractive:");
    println!(
        "{:>8} {:>12} {:>10} {:>8} {:>12}",
        "kind", "pred σ²", "mem B", "wire B", "decode ops"
    );
    for p in plans.iter().take(5) {
        println!(
            "{:>8} {:>12.1} {:>10} {:>8} {:>12}",
            p.kind().name(),
            p.cost.variance,
            p.cost.memory_bytes,
            p.cost.bytes_per_report,
            p.cost.decode_ops,
        );
    }

    // --- Execute the winner end to end over the byte path. ---
    let top = &plans[0];
    let client = WireClient::from_descriptor(&top.descriptor).expect("planned descriptor builds");
    let mut service =
        CollectorService::from_descriptor(&top.descriptor).expect("registry instantiates winner");
    let mut rng = StdRng::seed_from_u64(42);
    let zipf = ZipfGenerator::new(d, 1.1).expect("valid zipf");
    let values = zipf.sample_n(n as usize, &mut rng);
    let mut wire = Vec::new();
    for &v in &values {
        client
            .randomize_item(v, &mut rng, &mut wire)
            .expect("frame");
    }
    let frames = service.ingest_concat(&wire).expect("clean ingest");
    let truth = exact_counts(&values, d);
    let mse = metrics::mse(&service.estimates(), &truth);
    println!(
        "\nwinner {} executed: {frames} frames, {} wire bytes ({:.1} B/report)",
        top.kind().name(),
        wire.len(),
        wire.len() as f64 / n as f64,
    );
    println!(
        "measured MSE {mse:.1} vs predicted σ² {:.1} (ratio {:.2})",
        top.cost.variance,
        mse / top.cost.variance,
    );

    // --- Budgets steer the choice: squeeze memory, watch the pick flip. ---
    let wide = 1u64 << 16;
    println!("\nsame ε and population over d = {wide} under a shrinking memory budget:");
    for mem in [1024 * 1024u64, 128 * 1024, 8 * 1024] {
        let spec = WorkloadSpec::new(wide, n, eps).with_memory_budget(mem);
        let best = planner.best(&spec).expect("plannable");
        println!(
            "  mem ≤ {:>7} B → {:>6} (pred σ² {:.1}, uses {} B)",
            mem,
            best.kind().name(),
            best.cost.variance,
            best.cost.memory_bytes,
        );
    }

    // --- Impossible budgets fail loudly, not silently. ---
    let impossible = WorkloadSpec::new(wide, n, eps).with_memory_budget(32);
    match planner.best(&impossible) {
        Ok(p) => println!("\nunexpected plan: {}", p.kind().name()),
        Err(e) => println!("\na 32-byte server refused outright: {e}"),
    }
}
