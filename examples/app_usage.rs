//! App-usage telemetry à la Windows: repeated private collection.
//!
//! Run with: `cargo run --release --example app_usage`
//!
//! Microsoft's scenario: estimate average daily app usage across devices,
//! every day, without the repeated reports eroding privacy. Shows
//! 1BitMean accuracy, the dBitFlip usage histogram, and memoization
//! keeping a stable device's transcript constant across rounds.

use ldp::core::Epsilon;
use ldp::microsoft::{DBitFlip, MemoizedMeanClient, OneBitMean, RoundingConfig};
use ldp::workloads::gen::NumericStream;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let eps = Epsilon::new(1.0).expect("valid eps");
    let max_seconds = 3600.0;
    let n = 200_000;
    let mut rng = StdRng::seed_from_u64(10);

    // --- Single-round mean. ---
    let mech = OneBitMean::new(eps, max_seconds).expect("valid range");
    let stream = NumericStream::new(n, max_seconds, 0.02, 0.01, &mut rng);
    let values = stream.round_values(0, &mut rng);
    let truth = values.iter().sum::<f64>() / n as f64;
    let bits: Vec<bool> = values
        .iter()
        .map(|&x| mech.randomize(x, &mut rng))
        .collect();
    println!(
        "1BitMean over {n} devices: estimate {:.1}s vs true {:.1}s (predicted sd {:.1}s)",
        mech.estimate_mean(&bits),
        truth,
        mech.worst_case_variance(n).sqrt()
    );

    // --- Usage histogram via dBitFlip. ---
    let buckets = 16u32;
    let dbf = DBitFlip::new(buckets, 4, eps).expect("valid d");
    let mut agg = dbf.new_aggregator();
    for &x in &values {
        let b = ((x / max_seconds * buckets as f64) as u32).min(buckets - 1);
        agg.accumulate(&dbf.randomize(b, &mut rng));
    }
    println!("\ndBitFlip histogram (4 bits/device, 16 buckets):");
    let est = agg.estimate();
    for (i, &c) in est.iter().enumerate() {
        let bar = "#".repeat((c / n as f64 * 200.0).max(0.0) as usize);
        println!(
            "  [{:>4.0}-{:>4.0}s] {:>8.0} {bar}",
            i as f64 * max_seconds / buckets as f64,
            (i + 1) as f64 * max_seconds / buckets as f64,
            c
        );
    }

    // --- Memoized repeated collection. ---
    println!("\nmemoized daily collection (device with stable usage):");
    let config = RoundingConfig::new(0.0).expect("valid gamma");
    let device = MemoizedMeanClient::enroll(mech, config, &mut rng);
    let transcript: Vec<bool> = (0..7).map(|_| device.report(900.0, &mut rng)).collect();
    println!("  7-day transcript: {transcript:?}");
    println!("  -> identical every day: repeated collection reveals nothing new.");
}
