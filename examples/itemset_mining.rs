//! Set-valued data: which apps are installed, privately.
//!
//! Run with: `cargo run --release --example itemset_mining`
//!
//! Each user holds a *set* of installed apps; the aggregator mines the
//! most common ones via LDPMiner's padding-and-sampling two-phase
//! protocol (Qin et al., CCS 2016 — the set-valued direction of the
//! tutorial's heavy-hitter section).

use ldp::analytics::itemset::LdpMiner;
use ldp::core::Epsilon;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const APPS: [&str; 8] = [
    "maps", "chat", "camera", "bank", "music", "fitness", "news", "game",
];

fn main() {
    let mut rng = StdRng::seed_from_u64(6);
    let n = 100_000;
    let domain = 256u64; // app-store catalogue

    // Popular apps 0..8 with decreasing install rates; everyone also has
    // two random long-tail apps.
    let install_rate = [0.9, 0.7, 0.55, 0.4, 0.3, 0.2, 0.12, 0.08];
    let sets: Vec<Vec<u64>> = (0..n)
        .map(|_| {
            let mut s: Vec<u64> = install_rate
                .iter()
                .enumerate()
                .filter(|&(_, &p)| rng.gen_bool(p))
                .map(|(i, _)| i as u64)
                .collect();
            s.push(rng.gen_range(8..domain));
            s.push(rng.gen_range(8..domain));
            s
        })
        .collect();

    let miner =
        LdpMiner::new(domain, 6, 6, Epsilon::new(3.0).expect("valid eps")).expect("valid miner");
    let found = miner.run(&sets, &mut rng);

    println!("top installed apps from {n} users (ε=3, pad-and-sample l=6):\n");
    println!("{:>10} {:>12} {:>12}", "app", "estimate", "true");
    for h in &found {
        let name = APPS.get(h.item as usize).copied().unwrap_or("tail-app");
        let truth = sets.iter().filter(|s| s.contains(&h.item)).count();
        println!("{:>10} {:>12.0} {:>12}", name, h.estimate, truth);
    }
}
