//! URL telemetry à la Chrome: RAPPOR end-to-end.
//!
//! Run with: `cargo run --release --example url_telemetry`
//!
//! Reproduces the RAPPOR deployment scenario the tutorial describes:
//! browsers report their home page through Bloom-filter randomized
//! response; the server decodes candidate URLs by regression, never
//! seeing any individual's page. Also demonstrates the *unknown
//! dictionary* extension: discovering frequent URLs the server never
//! listed as candidates.

use ldp::core::Epsilon;
use ldp::rappor::{DiscoveryConfig, NGramDiscovery, RapporAggregator, RapporClient, RapporParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(14);
    let params = RapporParams::new(64, 2, 16, 0.25, 0.35, 0.65).expect("valid parameters");
    println!(
        "RAPPOR: eps_1 = {:.2} per report, eps_inf = {:.2} lifetime\n",
        params.epsilon_one_report(),
        params.epsilon_permanent()
    );

    // --- Known-dictionary decoding. ---
    let pages = [
        ("news.example", 30_000),
        ("mail.example", 20_000),
        ("video.example", 9_000),
        ("niche.example", 600),
    ];
    let mut agg = RapporAggregator::new(params.clone());
    for &(url, count) in &pages {
        for _ in 0..count {
            let mut browser = RapporClient::with_random_cohort(params.clone(), &mut rng);
            agg.accumulate(&browser.report(url.as_bytes(), &mut rng));
        }
    }
    let candidates: Vec<&[u8]> = vec![
        b"news.example",
        b"mail.example",
        b"video.example",
        b"niche.example",
        b"absent-a.example",
        b"absent-b.example",
    ];
    println!("decoded home-page counts ({} reports):", agg.reports());
    for d in agg.decode(&candidates) {
        println!(
            "  {:<20} estimate {:>8.0}  selected: {}",
            String::from_utf8_lossy(candidates[d.candidate]),
            d.estimate,
            d.selected
        );
    }

    // --- Unknown-dictionary discovery. ---
    println!("\nunknown-dictionary discovery (no candidate list):");
    let config = DiscoveryConfig {
        string_len: 6,
        fragment_len: 2,
        epsilon: Epsilon::new(3.0).expect("valid eps"),
        fragments_per_position: 4,
        max_candidates: 64,
    };
    let discovery = NGramDiscovery::new(config).expect("valid config");
    let population: Vec<&[u8]> = (0..40_000)
        .map(|i: u32| -> &[u8] {
            match i % 10 {
                0..=5 => b"qwerty",
                6..=8 => b"dvorak",
                _ => b"zz-9xk", // long tail
            }
        })
        .collect();
    // Shuffle-ish interleave is already present; run discovery.
    let found = discovery.run(&population, &mut rng);
    for d in found.iter().take(5) {
        println!("  discovered {:<8} estimate {:>8.0}", d.value, d.estimate);
    }
    let _ = rng.gen::<u64>();
}
