//! Private location heat map: grids, range queries, and hot spots.
//!
//! Run with: `cargo run --release --example location_heatmap`
//!
//! §1.3's location scenario: users report their position cell privately;
//! the server renders a density heat map, answers rectilinear count
//! queries, and locates hot spots — then refines them adaptively.

use ldp::analytics::spatial::{AdaptiveGrid, Point, Rect, UniformGrid};
use ldp::core::Epsilon;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn blob(n: usize, mx: f64, my: f64, sd: f64, rng: &mut StdRng) -> Vec<Point> {
    (0..n)
        .map(|_| {
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt() * sd;
            Point {
                x: (mx + r * (2.0 * std::f64::consts::PI * u2).cos()).clamp(0.0, 1.0),
                y: (my + r * (2.0 * std::f64::consts::PI * u2).sin()).clamp(0.0, 1.0),
            }
        })
        .collect()
}

fn main() {
    let eps = Epsilon::new(2.0).expect("valid eps");
    let mut rng = StdRng::seed_from_u64(4);

    // A city: dense downtown, a second hub, uniform background.
    let mut points = blob(60_000, 0.3, 0.7, 0.05, &mut rng);
    points.extend(blob(30_000, 0.75, 0.25, 0.04, &mut rng));
    points.extend((0..30_000).map(|_| Point {
        x: rng.gen_range(0.0..1.0),
        y: rng.gen_range(0.0..1.0),
    }));

    let grid = UniformGrid::new(12, eps).expect("valid granularity");
    let est = grid.collect(&points, &mut rng);

    println!(
        "private density heat map (12x12, ε=2, {} users):\n",
        points.len()
    );
    let max = est.counts().iter().cloned().fold(0.0, f64::max);
    for cy in (0..12).rev() {
        let row: String = (0..12)
            .map(|cx| {
                let v = est.cell(cx, cy).max(0.0) / max;
                match (v * 5.0) as u32 {
                    0 => ' ',
                    1 => '.',
                    2 => ':',
                    3 => 'o',
                    4 => 'O',
                    _ => '@',
                }
            })
            .collect();
        println!("  |{row}|");
    }

    let rect = Rect::new(0.2, 0.6, 0.4, 0.8).expect("valid rect");
    let truth = points
        .iter()
        .filter(|p| p.x >= 0.2 && p.x <= 0.4 && p.y >= 0.6 && p.y <= 0.8)
        .count();
    println!(
        "\nrange query [0.2,0.4]x[0.6,0.8]: estimate {:.0}, true {truth}",
        est.range_query(rect)
    );

    println!("\ntop-3 hot cells: {:?}", est.hot_spots(3));

    let ag = AdaptiveGrid::new(6, 4, 2, eps).expect("valid adaptive grid");
    let refined = ag.collect(&points, &mut rng).expect("collect succeeds");
    if let Some((cx, cy, sx, sy, c)) = refined.peak() {
        println!(
            "adaptive refinement peak: coarse cell ({cx},{cy}) sub-cell ({sx},{sy}) ≈ {c:.0} users"
        );
    }
}
