//! Emoji popularity à la Apple: CMS and HCMS side by side.
//!
//! Run with: `cargo run --release --example emoji_keyboard`
//!
//! The scenario from Apple's white paper: devices report which emoji the
//! user typed, privatized, over a huge token dictionary. CMS sends an
//! m-bit vector per report; HCMS sends effectively one bit, at matching
//! accuracy — the Fourier trick the tutorial highlights.

use ldp::apple::cms::CmsProtocol;
use ldp::apple::hcms::HcmsProtocol;
use ldp::core::Epsilon;
use ldp::workloads::gen::ZipfGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;

const EMOJI: [&str; 10] = ["😂", "❤️", "😍", "🤣", "😊", "🙏", "💕", "😭", "😘", "👍"];

fn main() {
    let n = 80_000;
    let dict: u64 = 1 << 16; // full token dictionary
    let eps = Epsilon::new(4.0).expect("valid eps");
    let mut rng = StdRng::seed_from_u64(9);

    // Popular emoji are tokens 0..10 with Zipf popularity; the rest of
    // the dictionary is a long tail.
    let zipf = ZipfGenerator::new(dict, 1.5).expect("valid zipf");
    let tokens = zipf.sample_n(n, &mut rng);
    let mut truth = vec![0u64; EMOJI.len()];
    for &t in &tokens {
        if (t as usize) < EMOJI.len() {
            truth[t as usize] += 1;
        }
    }

    let cms = CmsProtocol::new(64, 1024, eps, 7);
    let hcms = HcmsProtocol::new(64, 1024, eps, 7);
    let mut cms_server = cms.new_server();
    let mut hcms_server = hcms.new_server();
    for &t in &tokens {
        cms_server.accumulate(&cms.randomize(t, &mut rng));
        hcms_server.accumulate(&hcms.randomize(t, &mut rng));
    }

    println!("emoji popularity from {n} devices (ε=4, 64×1024 sketch):\n");
    println!("{:>4} {:>8} {:>10} {:>10}", "", "true", "CMS", "HCMS(1bit)");
    for (i, e) in EMOJI.iter().enumerate() {
        println!(
            "{:>4} {:>8} {:>10.0} {:>10.0}",
            e,
            truth[i],
            cms_server.estimate(i as u64),
            hcms_server.estimate(i as u64)
        );
    }
    println!(
        "\nCMS report: {} bits; HCMS payload: 1 privatized bit (+ indices).",
        1024
    );
}
