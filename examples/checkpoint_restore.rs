//! Checkpoint/restore and the merge tree: durable collector state.
//!
//! Run with: `cargo run --release --example checkpoint_restore`
//!
//! A collection round at fleet scale does not run on one machine or in
//! one sitting: collectors crash mid-round, and their partial states are
//! combined region by region before the global estimate. This example
//! shows both halves of that story on real wire traffic:
//!
//! 1. a `CollectorService` is killed halfway through a round and brought
//!    back from its checkpoint BLOB — the finished round is byte-for-byte
//!    identical to one that never died;
//! 2. eight collector checkpoints are folded collector → regional →
//!    global through a `MergeTree`, and the root estimates match a flat
//!    merge exactly, whatever the fan-in.

use ldp::core::protocol::{MechanismKind, ProtocolDescriptor};
use ldp::workloads::service::{CollectorService, MergeTree, WireClient};

fn main() {
    let n = 40_000usize;
    let d = 32u64;
    let descriptor = ProtocolDescriptor::builder(MechanismKind::CohortLocalHashing)
        .domain_size(d)
        .epsilon(1.0)
        .cohorts(256)
        .build()
        .expect("valid protocol parameters");
    let client = WireClient::from_descriptor(&descriptor).expect("client builds");
    let values: Vec<u64> = (0..n).map(|i| (i as u64).wrapping_mul(31) % d).collect();

    // --- 1. Kill a collector mid-round, restore it, finish the round.
    let halves = client
        .frames_sharded(&values, 2018, 2)
        .expect("framing succeeds");

    let mut collector = CollectorService::from_descriptor(&descriptor).expect("service builds");
    collector.ingest_concat(&halves[0]).expect("frames ingest");
    let checkpoint = collector.checkpoint();
    println!(
        "checkpoint after {} reports: {} bytes (descriptor + state BLOB)",
        collector.reports(),
        checkpoint.len()
    );
    drop(collector); // the process dies here

    let mut revived = CollectorService::from_checkpoint(&checkpoint).expect("checkpoint parses");
    revived.ingest_concat(&halves[1]).expect("frames ingest");

    let mut uninterrupted = CollectorService::from_descriptor(&descriptor).expect("service builds");
    uninterrupted
        .ingest_concat(&halves[0])
        .expect("frames ingest");
    uninterrupted
        .ingest_concat(&halves[1])
        .expect("frames ingest");

    assert_eq!(revived.reports(), uninterrupted.reports());
    assert_eq!(revived.checkpoint(), uninterrupted.checkpoint());
    let est = revived.estimates();
    for (a, b) in est.iter().zip(uninterrupted.estimates().iter()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    println!(
        "revived collector finished the round: {} reports, estimates byte-identical\n",
        revived.reports()
    );

    // A checkpoint refuses to restore under the wrong protocol.
    let other = ProtocolDescriptor::builder(MechanismKind::CohortLocalHashing)
        .domain_size(64)
        .epsilon(1.0)
        .cohorts(256)
        .build()
        .expect("valid protocol parameters");
    let mut wrong = CollectorService::from_descriptor(&other).expect("service builds");
    let guard = wrong.restore(&checkpoint).unwrap_err();
    println!("descriptor guard: {guard}\n");

    // --- 2. Eight collectors, merged collector → regional → global.
    let shards = client
        .frames_sharded(&values, 7, 8)
        .expect("framing succeeds");
    let checkpoints: Vec<Vec<u8>> = shards
        .iter()
        .map(|buf| {
            let mut c = CollectorService::from_descriptor(&descriptor).expect("service builds");
            c.ingest_concat(buf).expect("frames ingest");
            c.checkpoint()
        })
        .collect();

    let tree = MergeTree::new(4).expect("fan-in >= 2");
    let regional = tree.merge_level(&checkpoints).expect("regional merge");
    println!(
        "merge tree (fan-in 4): {} collector checkpoints -> {} regional -> root",
        checkpoints.len(),
        regional.len()
    );
    let global = tree.merge_to_root(&checkpoints).expect("global merge");
    assert_eq!(global.reports(), n);

    // Grouping is invisible: a different fan-in gives the same bytes.
    let wide = MergeTree::new(8)
        .expect("fan-in >= 2")
        .merge_to_root(&checkpoints)
        .expect("global merge");
    assert_eq!(global.checkpoint(), wide.checkpoint());
    println!(
        "root estimates over {} reports are fan-in independent — first items: {:?}",
        global.reports(),
        &global.estimates()[..4.min(d as usize)]
            .iter()
            .map(|x| x.round())
            .collect::<Vec<_>>()
    );
}
