//! Private next-word prediction: a bigram keyboard model under LDP.
//!
//! Run with: `cargo run --release --example next_word`
//!
//! §1.3's language-modeling direction: learn a Markov model of token
//! transitions from users' typing without collecting anyone's text. Each
//! user contributes one privatized bigram; the server assembles the
//! transition matrix and serves suggestions.

use ldp::analytics::language::{exact_bigram_model, PrivateBigramCollector};
use ldp::core::Epsilon;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const VOCAB: [&str; 10] = [
    "i", "you", "am", "are", "happy", "tired", "very", "so", "today", "now",
];

/// Tiny grammar: "i am (very|so)? (happy|tired) (today|now)" etc.
fn sample_sentence(rng: &mut StdRng) -> Vec<u64> {
    let subject = if rng.gen_bool(0.6) { 0 } else { 1 }; // i / you
    let verb = if subject == 0 { 2 } else { 3 }; // am / are
    let mut s = vec![subject, verb];
    if rng.gen_bool(0.5) {
        s.push(if rng.gen_bool(0.5) { 6 } else { 7 }); // very / so
    }
    s.push(if rng.gen_bool(0.5) { 4 } else { 5 }); // happy / tired
    if rng.gen_bool(0.7) {
        s.push(if rng.gen_bool(0.5) { 8 } else { 9 }); // today / now
    }
    s
}

fn main() {
    let mut rng = StdRng::seed_from_u64(12);
    let n = 200_000;
    let texts: Vec<Vec<u64>> = (0..n).map(|_| sample_sentence(&mut rng)).collect();

    let collector =
        PrivateBigramCollector::new(VOCAB.len() as u64, Epsilon::new(2.0).expect("valid eps"))
            .expect("valid vocab");
    let reports: Vec<_> = texts
        .iter()
        .filter_map(|t| collector.randomize(t, &mut rng))
        .collect();
    let private = collector.build_model(&reports);
    let exact = exact_bigram_model(&texts, VOCAB.len() as u64);

    println!("next-word suggestions from {n} users (ε=2):\n");
    for &ctx in &[0u64, 1, 2, 6] {
        let private_top: Vec<&str> = private
            .predict(ctx, 3)
            .iter()
            .map(|&t| VOCAB[t as usize])
            .collect();
        let exact_top: Vec<&str> = exact
            .predict(ctx, 3)
            .iter()
            .map(|&t| VOCAB[t as usize])
            .collect();
        println!(
            "after {:<6} private suggests {:?}   (exact model: {:?})",
            format!("'{}':", VOCAB[ctx as usize]),
            private_top,
            exact_top
        );
    }

    let test: Vec<u64> = (0..200).flat_map(|_| sample_sentence(&mut rng)).collect();
    println!(
        "\nperplexity on held-out text: private {:.2}, exact {:.2}, uniform {:.1}",
        private.perplexity(&test),
        exact.perplexity(&test),
        VOCAB.len() as f64
    );
}
