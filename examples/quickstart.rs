//! Quickstart: a client/server LDP round trip over bytes.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! The deployment the tutorial opens with: an operator wants the
//! popularity histogram of 16 options across 50,000 users, but no single
//! report may reveal much about its sender — and clients and collector
//! are separate processes speaking a versioned wire protocol, not one
//! address space. The round trip below is the real shape:
//!
//! 1. the operator ships one serialized `ProtocolDescriptor` to the
//!    fleet (here: cohort OLH, the workspace's scalable default);
//! 2. each client randomizes locally and transmits an opaque report
//!    frame (`&[u8]` — a handful of bytes);
//! 3. the `CollectorService`, built from the same descriptor, ingests
//!    frames without ever seeing a raw value and snapshots unbiased
//!    estimates.

use ldp::core::fo::{CohortLocalHashing, FrequencyOracle};
use ldp::core::protocol::{MechanismKind, ProtocolDescriptor};
use ldp::core::Epsilon;
use ldp::workloads::gen::{exact_counts, ZipfGenerator};
use ldp::workloads::service::{CollectorService, WireClient};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 50_000usize;
    let d = 16u64;
    let cohorts = 512u32;
    let eps = 1.0;
    let mut rng = StdRng::seed_from_u64(2018);

    // The operator's versioned protocol config — this byte string is
    // what a deployment would ship to millions of devices.
    let descriptor = ProtocolDescriptor::builder(MechanismKind::CohortLocalHashing)
        .domain_size(d)
        .epsilon(eps)
        .cohorts(cohorts)
        .build()
        .expect("valid protocol parameters");
    let config_bytes = descriptor.to_bytes();
    println!(
        "protocol: {} | ε = {} | descriptor = {} bytes on the wire\n",
        descriptor.kind().name(),
        descriptor.epsilon(),
        config_bytes.len()
    );

    // A skewed population: option 0 is most popular.
    let zipf = ZipfGenerator::new(d, 1.2).expect("valid zipf");
    let values = zipf.sample_n(n, &mut rng);
    let truth = exact_counts(&values, d);

    // Client side: each device parses the shipped config and sends one
    // constant-size randomized frame. (All frames land in one buffer
    // here; in a deployment they arrive over the network.)
    let client_desc = ProtocolDescriptor::from_bytes(&config_bytes).expect("config parses");
    let client = WireClient::from_descriptor(&client_desc).expect("client builds");
    let mut wire = Vec::new();
    for &v in &values {
        client
            .randomize_item(v, &mut rng, &mut wire) // ε-LDP, then serialized
            .expect("value in domain");
    }
    println!(
        "clients sent {n} frames, {} bytes total ({:.1} bytes/report)",
        wire.len(),
        wire.len() as f64 / n as f64
    );

    // Server side: ingest opaque bytes, snapshot unbiased estimates.
    let mut service = CollectorService::from_descriptor(&descriptor).expect("service builds");
    let ingested = service.ingest_concat(&wire).expect("well-formed frames");
    assert_eq!(ingested, n);
    let est = service.estimates();

    // A malformed frame is rejected with an error — the service never
    // panics on adversarial bytes, and its state is untouched.
    let garbage = [0x07u8, 0x99, 0x03, 0x01, 0x02, 0x03];
    let rejected = service.ingest(&garbage).unwrap_err();
    println!("garbage frame rejected: {rejected}\n");

    // The same parameters give the analytical noise floor for context.
    let oracle = CohortLocalHashing::optimized(d, cohorts, Epsilon::new(eps).unwrap());
    let sd = oracle.noise_floor_variance(n).sqrt();
    println!(
        "{:>6} {:>10} {:>10} {:>8}",
        "item", "true", "estimate", "err/sd"
    );
    for i in 0..d as usize {
        println!(
            "{:>6} {:>10.0} {:>10.0} {:>8.2}",
            i,
            truth[i],
            est[i],
            (est[i] - truth[i]) / sd
        );
    }
    let within = (0..d as usize)
        .filter(|&i| (est[i] - truth[i]).abs() < 3.0 * sd)
        .count();
    println!("\n{within}/{d} items within 3 standard deviations — unbiased, as promised.");
}
