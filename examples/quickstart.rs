//! Quickstart: privately estimate a histogram with a frequency oracle.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! The scenario the tutorial opens with: an aggregator wants the
//! popularity histogram of 16 options across 50,000 users, but no single
//! report may reveal much about its sender. Each user randomizes locally
//! (here through OLH, the workspace's default general-purpose oracle);
//! the server debiases the aggregate.

use ldp::core::fo::{FoAggregator, FrequencyOracle, OptimizedLocalHashing};
use ldp::core::Epsilon;
use ldp::workloads::gen::{exact_counts, ZipfGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 50_000;
    let d = 16u64;
    let eps = Epsilon::new(1.0).expect("epsilon is positive");
    let mut rng = StdRng::seed_from_u64(2018);

    // A skewed population: option 0 is most popular.
    let zipf = ZipfGenerator::new(d, 1.2).expect("valid zipf");
    let values = zipf.sample_n(n, &mut rng);
    let truth = exact_counts(&values, d);

    // Client side: each user sends one constant-size randomized report.
    let oracle = OptimizedLocalHashing::new(d, eps);
    let mut agg = oracle.new_aggregator();
    for &v in &values {
        let report = oracle.randomize(v, &mut rng); // ε-LDP
        agg.accumulate(&report);
    }

    // Server side: unbiased count estimates.
    let est = agg.estimate();
    let sd = oracle.noise_floor_variance(n).sqrt();

    println!(
        "ε = {} | n = {n} | per-item noise sd ≈ {sd:.0}\n",
        eps.value()
    );
    println!(
        "{:>6} {:>10} {:>10} {:>8}",
        "item", "true", "estimate", "err/sd"
    );
    for i in 0..d as usize {
        println!(
            "{:>6} {:>10.0} {:>10.0} {:>8.2}",
            i,
            truth[i],
            est[i],
            (est[i] - truth[i]) / sd
        );
    }
    let within = (0..d as usize)
        .filter(|&i| (est[i] - truth[i]).abs() < 3.0 * sd)
        .count();
    println!("\n{within}/{d} items within 3 standard deviations — unbiased, as promised.");
}
