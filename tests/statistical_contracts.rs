//! Cross-crate statistical contracts: every estimator in the workspace is
//! unbiased, every analytic variance matches the empirical one, and
//! post-processing preserves totals. These are the §1.1 "mathematical
//! tools" applied uniformly across all mechanisms.

use ldp::core::fo::{
    collect_counts, DirectEncoding, FrequencyOracle, HadamardResponse, OptimizedLocalHashing,
    OptimizedUnaryEncoding, SubsetSelection, SymmetricUnaryEncoding, ThresholdHistogramEncoding,
};
use ldp::core::postprocess::norm_sub;
use ldp::core::Epsilon;
use ldp::workloads::gen::{exact_counts, ZipfGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

const D: u64 = 16;
const N: usize = 8_000;
const TRIALS: u64 = 25;

/// Average the item-0 estimate across trials; it must converge to the
/// truth within the standard error of the trial mean.
fn check_unbiased<O: FrequencyOracle>(oracle: O, seed0: u64) {
    let zipf = ZipfGenerator::new(D, 1.0).expect("valid zipf");
    let mut sum = 0.0;
    let mut truth_sum = 0.0;
    for t in 0..TRIALS {
        let mut rng = StdRng::seed_from_u64(seed0 + t);
        let values = zipf.sample_n(N, &mut rng);
        truth_sum += exact_counts(&values, D)[0];
        sum += collect_counts(&oracle, &values, &mut rng)[0];
    }
    let avg = sum / TRIALS as f64;
    let truth_avg = truth_sum / TRIALS as f64;
    // Standard error of the mean across trials.
    let sd = oracle.count_variance(N, truth_avg / N as f64).sqrt();
    let sem = sd / (TRIALS as f64).sqrt();
    assert!(
        (avg - truth_avg).abs() < 4.0 * sem + 0.01 * truth_avg,
        "{}: avg={avg:.1} truth={truth_avg:.1} sem={sem:.1}",
        oracle.name()
    );
}

#[test]
fn grr_unbiased() {
    check_unbiased(
        DirectEncoding::new(D, Epsilon::new(1.0).expect("eps")).expect("domain"),
        1000,
    );
}

#[test]
fn sue_unbiased() {
    check_unbiased(
        SymmetricUnaryEncoding::new(D, Epsilon::new(1.0).expect("eps")).expect("domain"),
        2000,
    );
}

#[test]
fn oue_unbiased() {
    check_unbiased(
        OptimizedUnaryEncoding::new(D, Epsilon::new(1.0).expect("eps")).expect("domain"),
        3000,
    );
}

#[test]
fn the_unbiased() {
    check_unbiased(
        ThresholdHistogramEncoding::new(D, Epsilon::new(1.0).expect("eps")).expect("domain"),
        4000,
    );
}

#[test]
fn olh_unbiased() {
    check_unbiased(
        OptimizedLocalHashing::new(D, Epsilon::new(1.0).expect("eps")),
        5000,
    );
}

#[test]
fn hr_unbiased() {
    check_unbiased(
        HadamardResponse::new(D, Epsilon::new(1.0).expect("eps")),
        6000,
    );
}

#[test]
fn ss_unbiased() {
    check_unbiased(
        SubsetSelection::new(D, Epsilon::new(1.0).expect("eps")),
        7000,
    );
}

#[test]
fn empirical_variance_matches_analytic_for_olh() {
    let oracle = OptimizedLocalHashing::new(D, Epsilon::new(1.0).expect("eps"));
    let zipf = ZipfGenerator::new(D, 1.0).expect("valid zipf");
    let trials = 120u64;
    let mut rng0 = StdRng::seed_from_u64(9);
    let values = zipf.sample_n(N, &mut rng0);
    let truth = exact_counts(&values, D);
    let ests: Vec<f64> = (0..trials)
        .map(|t| {
            let mut rng = StdRng::seed_from_u64(10_000 + t);
            collect_counts(&oracle, &values, &mut rng)[0]
        })
        .collect();
    let mean = ests.iter().sum::<f64>() / trials as f64;
    let var = ests.iter().map(|e| (e - mean).powi(2)).sum::<f64>() / trials as f64;
    let predicted = oracle.count_variance(N, truth[0] / N as f64);
    assert!(
        (var - predicted).abs() / predicted < 0.4,
        "var={var:.0} predicted={predicted:.0}"
    );
}

#[test]
fn norm_sub_preserves_total_and_improves_mse_after_collection() {
    let oracle = OptimizedLocalHashing::new(256, Epsilon::new(1.0).expect("eps"));
    let zipf = ZipfGenerator::new(256, 1.5).expect("valid zipf");
    let mut rng = StdRng::seed_from_u64(77);
    let values = zipf.sample_n(20_000, &mut rng);
    let truth = exact_counts(&values, 256);
    let raw = collect_counts(&oracle, &values, &mut rng);
    let post = norm_sub(&raw, 20_000.0);
    let total: f64 = post.iter().sum();
    assert!((total - 20_000.0).abs() < 1e-6);
    let mse = |est: &[f64]| -> f64 {
        est.iter()
            .zip(&truth)
            .map(|(e, t)| (e - t).powi(2))
            .sum::<f64>()
            / 256.0
    };
    assert!(
        mse(&post) < mse(&raw),
        "norm-sub should reduce MSE on skewed data"
    );
}

#[test]
fn report_size_ladder_is_as_documented() {
    // The README's communication table, pinned as a test.
    let eps = Epsilon::new(1.0).expect("eps");
    let d = 1u64 << 20;
    let grr = DirectEncoding::new(d, eps).expect("domain").report_bits();
    let oue = OptimizedUnaryEncoding::new(d, eps)
        .expect("domain")
        .report_bits();
    let olh = OptimizedLocalHashing::new(d, eps).report_bits();
    let hr = HadamardResponse::new(d, eps).report_bits();
    assert_eq!(grr, 20);
    assert_eq!(oue, 1 << 20);
    assert!(olh <= 66);
    assert_eq!(hr, 21);
}
