//! Adversarial and failure-injection tests: what happens when inputs are
//! hostile or malformed. LDP's unbiasedness story assumes honest-but-
//! private clients; these tests pin (a) that malformed reports fail loud,
//! not silent, and (b) the *measured* sensitivity of each aggregate to
//! data-poisoning users — the robustness question the deployed systems
//! had to answer before shipping.

use ldp::core::fo::{FoAggregator, FrequencyOracle, OptimizedLocalHashing, OptimizedUnaryEncoding};
use ldp::core::Epsilon;
use ldp::workloads::gen::{exact_counts, ZipfGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn malformed_unary_report_panics() {
    let oracle = OptimizedUnaryEncoding::new(16, Epsilon::new(1.0).expect("eps")).expect("domain");
    let mut agg = oracle.new_aggregator();
    let bad = ldp::sketch::BitVec::zeros(8); // wrong width
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        agg.accumulate(&bad);
    }));
    assert!(
        result.is_err(),
        "width mismatch must panic, not corrupt state"
    );
}

#[test]
fn malformed_rappor_report_panics() {
    use ldp::rappor::{RapporAggregator, RapporParams, RapporReport};
    let params = RapporParams::small(4).expect("params");
    let mut agg = RapporAggregator::new(params);
    let bad = RapporReport {
        cohort: 99, // out of range
        bits: ldp::sketch::BitVec::zeros(32),
    };
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        agg.accumulate(&bad);
    }));
    assert!(result.is_err(), "bad cohort must panic");
}

/// Poisoning: a coalition of `m` fake users all report support for one
/// target item. Under OLH the debias slope is 1/(p* − q*), so the
/// inflation is ≈ m/(p*−q*) — bounded and linear in the coalition size,
/// never amplified by other users' data. Pin that bound.
#[test]
fn poisoning_inflation_is_linear_and_bounded() {
    let d = 64u64;
    let eps = Epsilon::new(1.0).expect("eps");
    let oracle = OptimizedLocalHashing::new(d, eps);
    let zipf = ZipfGenerator::new(d, 1.0).expect("zipf");
    let n_honest = 20_000;
    let target = 63u64; // unpopular item

    let mut rng = StdRng::seed_from_u64(5);
    let honest = zipf.sample_n(n_honest, &mut rng);
    let truth = exact_counts(&honest, d);

    let mut inflations = Vec::new();
    for &m in &[0usize, 200, 400] {
        let mut agg = oracle.new_aggregator();
        for &v in &honest {
            agg.accumulate(&oracle.randomize(v, &mut rng));
        }
        // Attackers skip the randomizer: they pick a seed and claim the
        // bucket that supports the target (the strongest input-independent
        // attack a report-forging client can mount).
        for i in 0..m {
            let seed = i as u64 * 7919;
            let fam = ldp::sketch::hash::HashFamily::new(oracle.g());
            let bucket = fam.hash(target, seed);
            agg.accumulate(&ldp::core::fo::hashing::LhReport { seed, bucket });
        }
        let est = agg.estimate();
        inflations.push(est[target as usize] - truth[target as usize]);
    }
    // Inflation grows ~linearly with coalition size...
    let per_attacker_small = (inflations[1] - inflations[0]) / 200.0;
    let per_attacker_large = (inflations[2] - inflations[0]) / 400.0;
    assert!(
        (per_attacker_small - per_attacker_large).abs() < per_attacker_small.abs() * 0.5 + 1.0,
        "inflation should be linear: {per_attacker_small} vs {per_attacker_large}"
    );
    // ...at roughly the analytic slope 1/(p* - q*).
    let e = eps.value().exp();
    let g = oracle.g() as f64;
    let slope = 1.0 / (e / (e + g - 1.0) - 1.0 / g);
    assert!(
        (per_attacker_large - slope).abs() < slope * 0.5,
        "per-attacker inflation {per_attacker_large} vs analytic {slope}"
    );
}

/// An attacker cannot *suppress* an item below what removing their own
/// honest report would do: non-support only removes the q* baseline.
#[test]
fn suppression_attack_is_weak() {
    let d = 16u64;
    let eps = Epsilon::new(1.0).expect("eps");
    let oracle = OptimizedLocalHashing::new(d, eps);
    let mut rng = StdRng::seed_from_u64(9);
    let n = 20_000usize;
    let m = 1_000usize; // attackers
    let mut agg = oracle.new_aggregator();
    for u in 0..n {
        agg.accumulate(&oracle.randomize((u % 4) as u64, &mut rng));
    }
    // Attackers report buckets that do NOT support item 0.
    let fam = ldp::sketch::hash::HashFamily::new(oracle.g());
    let mut placed = 0usize;
    let mut seed = 0u64;
    while placed < m {
        let bucket = (fam.hash(0, seed) + 1) % oracle.g();
        agg.accumulate(&ldp::core::fo::hashing::LhReport { seed, bucket });
        placed += 1;
        seed += 1;
    }
    let est = agg.estimate();
    let truth0 = (n / 4) as f64;
    // Suppression is bounded by m * q*/(p*-q*) ≈ m * 0.85 at eps=1... the
    // point is item 0 stays clearly positive and dominant.
    assert!(
        est[0] > truth0 * 0.5,
        "suppression should not erase a heavy item: est={}",
        est[0]
    );
}
