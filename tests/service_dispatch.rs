//! Descriptor-driven dispatch, end to end: for every mechanism kind the
//! workspace registry can build, a full collection round through the
//! byte path — `WireClient` frames in per-shard RNG streams, per-shard
//! `CollectorService`s, shard-order merges, estimates out — must be
//! **bit-identical** to the direct generic engine
//! (`accumulate_mech_sharded_sequential`) over the same inputs, seed,
//! and shard count.
//!
//! This is the acceptance gate of the protocol/wire layer: serialize →
//! transmit → decode → erased dispatch costs exactly zero statistical
//! fidelity.

use ldp::apple::cms::CmsOracle;
use ldp::apple::hcms::HcmsOracle;
use ldp::core::fo::{
    CohortLocalHashing, DirectEncoding, FoAggregator, FrequencyOracle, HadamardResponse,
    OptimizedLocalHashing, OptimizedUnaryEncoding, SubsetSelection, SummationHistogramEncoding,
    SymmetricUnaryEncoding, ThresholdHistogramEncoding,
};
use ldp::core::protocol::{MechanismKind, ProtocolDescriptor, DEFAULT_COHORT_SEED_BASE};
use ldp::core::Epsilon;
use ldp::microsoft::{DBitFlip, OneBitMean};
use ldp::workloads::parallel::{accumulate_mech_sharded_sequential, shard_seed};
use ldp::workloads::service::{CollectorService, MergeTree, WireClient};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 2018;
const SHARDS: usize = 7;

fn values(n: usize, d: u64) -> Vec<u64> {
    (0..n).map(|i| (i as u64).wrapping_mul(31) % d).collect()
}

/// Runs the byte path: client frames per shard, one service per shard,
/// merged in shard order.
fn byte_path_estimates(desc: &ProtocolDescriptor, values: &[u64]) -> Vec<f64> {
    let client = WireClient::from_descriptor(desc).expect("client builds");
    let buffers = client
        .frames_sharded(values, SEED, SHARDS)
        .expect("framing succeeds");
    let mut merged: Option<CollectorService> = None;
    for buf in &buffers {
        let mut shard = CollectorService::from_descriptor(desc).expect("service builds");
        let frames = shard.ingest_concat(buf).expect("frames ingest");
        assert!(frames > 0 || buf.is_empty());
        match merged.as_mut() {
            None => merged = Some(shard),
            Some(m) => m.merge(shard).expect("same-descriptor merge"),
        }
    }
    merged.expect("at least one shard").estimates()
}

/// Asserts the byte path reproduces the direct generic engine bit for
/// bit for an item-domain oracle.
fn check_oracle<O>(desc: &ProtocolDescriptor, oracle: O, n: usize)
where
    O: FrequencyOracle + Sync,
    O::Aggregator: Send,
{
    let vals = values(n, oracle.domain_size());
    let direct = accumulate_mech_sharded_sequential(&&oracle, &vals, SEED, SHARDS).estimate();
    let bytes = byte_path_estimates(desc, &vals);
    assert_eq!(direct.len(), bytes.len(), "{}", desc.kind().name());
    for (i, (a, b)) in direct.iter().zip(&bytes).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{} item {i}: direct {a} != bytes {b}",
            desc.kind().name()
        );
    }
}

fn base(kind: MechanismKind, d: u64) -> ProtocolDescriptor {
    ProtocolDescriptor::builder(kind)
        .domain_size(d)
        .epsilon(1.0)
        .build()
        .expect("valid descriptor")
}

#[test]
fn grr_bytes_match_generic_path() {
    let d = 32;
    check_oracle(
        &base(MechanismKind::DirectEncoding, d),
        DirectEncoding::new(d, Epsilon::new(1.0).unwrap()).unwrap(),
        2000,
    );
}

#[test]
fn sue_bytes_match_generic_path() {
    let d = 48;
    check_oracle(
        &base(MechanismKind::SymmetricUnary, d),
        SymmetricUnaryEncoding::new(d, Epsilon::new(1.0).unwrap()).unwrap(),
        1500,
    );
}

#[test]
fn oue_bytes_match_generic_path() {
    let d = 48;
    check_oracle(
        &base(MechanismKind::OptimizedUnary, d),
        OptimizedUnaryEncoding::new(d, Epsilon::new(1.0).unwrap()).unwrap(),
        1500,
    );
}

#[test]
fn she_bytes_match_generic_path() {
    // The one floating-point aggregator: the byte path must reproduce
    // even the f64 sums bit for bit (same per-shard accumulation order,
    // same shard-merge order).
    let d = 24;
    check_oracle(
        &base(MechanismKind::SummationHistogram, d),
        SummationHistogramEncoding::new(d, Epsilon::new(1.0).unwrap()).unwrap(),
        800,
    );
}

#[test]
fn the_bytes_match_generic_path() {
    let d = 48;
    check_oracle(
        &base(MechanismKind::ThresholdHistogram, d),
        ThresholdHistogramEncoding::new(d, Epsilon::new(1.0).unwrap()).unwrap(),
        1500,
    );
}

#[test]
fn olh_cohort_bytes_match_generic_path() {
    let d = 64;
    let desc = ProtocolDescriptor::builder(MechanismKind::CohortLocalHashing)
        .domain_size(d)
        .epsilon(1.0)
        .cohorts(128)
        .build()
        .unwrap();
    check_oracle(
        &desc,
        CohortLocalHashing::optimized_with_seed(
            d,
            128,
            DEFAULT_COHORT_SEED_BASE,
            Epsilon::new(1.0).unwrap(),
        ),
        3000,
    );
}

#[test]
fn hr_bytes_match_generic_path() {
    let d = 50; // non-power-of-two domain exercises the m > d spectrum
    check_oracle(
        &base(MechanismKind::HadamardResponse, d),
        HadamardResponse::new(d, Epsilon::new(1.0).unwrap()),
        2000,
    );
}

#[test]
fn ss_bytes_match_generic_path() {
    let d = 40;
    check_oracle(
        &base(MechanismKind::SubsetSelection, d),
        SubsetSelection::new(d, Epsilon::new(1.0).unwrap()),
        1200,
    );
}

#[test]
fn raw_olh_escape_hatch_bytes_match_generic_path() {
    let d = 32;
    let desc = ProtocolDescriptor::builder(MechanismKind::OptimizedLocalHashing)
        .domain_size(d)
        .epsilon(1.0)
        .allow_linear_memory()
        .build()
        .unwrap();
    check_oracle(
        &desc,
        OptimizedLocalHashing::new(d, Epsilon::new(1.0).unwrap()),
        1000,
    );
}

#[test]
fn apple_cms_bytes_match_generic_path() {
    let d = 128;
    let desc = ProtocolDescriptor::builder(MechanismKind::AppleCms)
        .domain_size(d)
        .epsilon(2.0)
        .sketch(8, 128)
        .hash_seed(31)
        .build()
        .unwrap();
    check_oracle(
        &desc,
        CmsOracle::new(8, 128, Epsilon::new(2.0).unwrap(), 31, d),
        2000,
    );
}

#[test]
fn apple_hcms_bytes_match_generic_path() {
    let d = 100;
    let desc = ProtocolDescriptor::builder(MechanismKind::AppleHcms)
        .domain_size(d)
        .epsilon(2.0)
        .sketch(8, 128)
        .hash_seed(31)
        .build()
        .unwrap();
    check_oracle(
        &desc,
        HcmsOracle::new(8, 128, Epsilon::new(2.0).unwrap(), 31, d),
        2000,
    );
}

#[test]
fn microsoft_dbitflip_bytes_match_generic_path() {
    let k = 256;
    let desc = ProtocolDescriptor::builder(MechanismKind::MicrosoftDBitFlip)
        .domain_size(k as u64)
        .bits_per_device(8)
        .epsilon(1.0)
        .build()
        .unwrap();
    check_oracle(
        &desc,
        DBitFlip::new(k, 8, Epsilon::new(1.0).unwrap()).unwrap(),
        2000,
    );
}

#[test]
fn microsoft_onebitmean_bytes_match_generic_path() {
    // Real-valued inputs: the byte path mirrors the shard plan by hand
    // (frames_sharded is item-typed), then merges in shard order.
    let desc = ProtocolDescriptor::builder(MechanismKind::MicrosoftOneBitMean)
        .epsilon(1.0)
        .max_value(500.0)
        .build()
        .unwrap();
    let mech = OneBitMean::new(Epsilon::new(1.0).unwrap(), 500.0).unwrap();
    let inputs: Vec<f64> = (0..3000).map(|i| (i % 500) as f64).collect();

    let direct = accumulate_mech_sharded_sequential(&mech, &inputs, SEED, SHARDS).estimate();

    let client = WireClient::from_descriptor(&desc).unwrap();
    let shards = SHARDS.min(inputs.len());
    let chunk = inputs.len().div_ceil(shards);
    let mut merged: Option<CollectorService> = None;
    for s in 0..shards {
        let (lo, hi) = (
            (s * chunk).min(inputs.len()),
            ((s + 1) * chunk).min(inputs.len()),
        );
        let mut rng = StdRng::seed_from_u64(shard_seed(SEED, s));
        let mut buf = Vec::new();
        for &x in &inputs[lo..hi] {
            client.randomize_real(x, &mut rng, &mut buf).unwrap();
        }
        let mut shard = CollectorService::from_descriptor(&desc).unwrap();
        shard.ingest_concat(&buf).unwrap();
        match merged.as_mut() {
            None => merged = Some(shard),
            Some(m) => m.merge(shard).unwrap(),
        }
    }
    let bytes = merged.unwrap().estimates();
    assert_eq!(direct.len(), bytes.len());
    for (a, b) in direct.iter().zip(&bytes) {
        assert_eq!(a.to_bits(), b.to_bits(), "direct {a} != bytes {b}");
    }
}

#[test]
fn serialized_descriptor_drives_the_same_service() {
    // Ship the descriptor itself over the wire: a service built from
    // the deserialized bytes is indistinguishable from one built from
    // the original.
    let d = 64;
    let desc = ProtocolDescriptor::builder(MechanismKind::CohortLocalHashing)
        .domain_size(d)
        .epsilon(1.5)
        .cohorts(64)
        .build()
        .unwrap();
    let shipped = ProtocolDescriptor::from_bytes(&desc.to_bytes()).unwrap();
    assert_eq!(shipped, desc);

    let vals = values(1000, d);
    let a = byte_path_estimates(&desc, &vals);
    let b = byte_path_estimates(&shipped, &vals);
    assert_eq!(a, b);
}

/// A collector killed mid-ingest and brought back from its checkpoint
/// must finish the round byte-identically to one that never died.
fn check_kill_and_restore(desc: &ProtocolDescriptor, d: u64, n: usize) {
    let client = WireClient::from_descriptor(desc).expect("client builds");
    let vals = values(n, d);
    let buffers = client
        .frames_sharded(&vals, SEED, 2)
        .expect("framing succeeds");
    let (first_half, second_half) = (&buffers[0], &buffers[1]);

    let mut uninterrupted = CollectorService::from_descriptor(desc).unwrap();
    uninterrupted.ingest_concat(first_half).unwrap();
    uninterrupted.ingest_concat(second_half).unwrap();

    // Kill after the first half; bring the state back two ways.
    let ckpt = {
        let mut service = CollectorService::from_descriptor(desc).unwrap();
        service.ingest_concat(first_half).unwrap();
        service.checkpoint()
    };

    let mut from_bytes = CollectorService::from_checkpoint(&ckpt).unwrap();
    from_bytes.ingest_concat(second_half).unwrap();

    let mut in_place = CollectorService::from_descriptor(desc).unwrap();
    in_place.restore(&ckpt).unwrap();
    in_place.ingest_concat(second_half).unwrap();

    let reference = uninterrupted.estimates();
    for (name, resumed) in [("from_checkpoint", from_bytes), ("restore", in_place)] {
        assert_eq!(resumed.descriptor(), uninterrupted.descriptor());
        assert_eq!(resumed.reports(), uninterrupted.reports(), "{name}");
        let est = resumed.estimates();
        assert_eq!(reference.len(), est.len(), "{name}");
        for (i, (a, b)) in reference.iter().zip(&est).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{} item {i} after {name}: uninterrupted {a} != resumed {b}",
                desc.kind().name()
            );
        }
        // The resumed state is the uninterrupted state, byte for byte.
        assert_eq!(resumed.checkpoint(), uninterrupted.checkpoint(), "{name}");
    }
}

#[test]
fn killed_and_restored_collectors_are_byte_identical() {
    let d = 64;
    let olhc = ProtocolDescriptor::builder(MechanismKind::CohortLocalHashing)
        .domain_size(d)
        .epsilon(1.0)
        .cohorts(64)
        .build()
        .unwrap();
    check_kill_and_restore(&olhc, d, 2000);

    let cms = ProtocolDescriptor::builder(MechanismKind::AppleCms)
        .domain_size(d)
        .epsilon(2.0)
        .sketch(8, 128)
        .hash_seed(31)
        .build()
        .unwrap();
    check_kill_and_restore(&cms, d, 2000);

    let dbit = ProtocolDescriptor::builder(MechanismKind::MicrosoftDBitFlip)
        .domain_size(d)
        .bits_per_device(8)
        .epsilon(1.0)
        .build()
        .unwrap();
    check_kill_and_restore(&dbit, d, 2000);

    // The floating-point aggregator too: restore replays the exact f64
    // bits, so resumed accumulation stays on the reference stream.
    let she = base(MechanismKind::SummationHistogram, 24);
    check_kill_and_restore(&she, 24, 800);
}

#[test]
fn checkpoint_restore_guards_descriptor_and_integrity() {
    let d = 32;
    let desc = base(MechanismKind::DirectEncoding, d);
    let mut service = CollectorService::from_descriptor(&desc).unwrap();
    let client = WireClient::from_descriptor(&desc).unwrap();
    let buffers = client.frames_sharded(&values(500, d), SEED, 1).unwrap();
    service.ingest_concat(&buffers[0]).unwrap();
    let ckpt = service.checkpoint();

    // Wrong descriptor: refused before any state is touched.
    let other = base(MechanismKind::DirectEncoding, 64);
    let mut wrong = CollectorService::from_descriptor(&other).unwrap();
    let err = wrong.restore(&ckpt).unwrap_err().to_string();
    assert!(err.contains("different"), "descriptor guard: {err}");
    assert_eq!(wrong.reports(), 0, "failed restore must not mutate");

    // Tampered descriptor bytes: the embedded hash catches it.
    let mut bad = ckpt.clone();
    let flip_at = 8; // inside the descriptor region
    bad[flip_at] ^= 0x01;
    assert!(CollectorService::from_checkpoint(&bad).is_err());

    // Truncations never panic and never build a service.
    for cut in 0..ckpt.len() {
        assert!(CollectorService::from_checkpoint(&ckpt[..cut]).is_err());
    }
}

/// Collector → regional → global: whatever the fan-in (grouping), the
/// root estimates are bit-identical to a flat shard-order merge.
fn check_merge_tree(desc: &ProtocolDescriptor, d: u64, n: usize) {
    let client = WireClient::from_descriptor(desc).expect("client builds");
    let vals = values(n, d);
    let buffers = client
        .frames_sharded(&vals, SEED, 8)
        .expect("framing succeeds");
    let checkpoints: Vec<Vec<u8>> = buffers
        .iter()
        .map(|buf| {
            let mut collector = CollectorService::from_descriptor(desc).unwrap();
            collector.ingest_concat(buf).unwrap();
            collector.checkpoint()
        })
        .collect();

    let mut flat = CollectorService::from_checkpoint(&checkpoints[0]).unwrap();
    for ckpt in &checkpoints[1..] {
        let shard = CollectorService::from_checkpoint(ckpt).unwrap();
        flat.merge(shard).unwrap();
    }
    let reference = flat.estimates();

    for fan_in in [2usize, 3, 4, 8] {
        let tree = MergeTree::new(fan_in).unwrap();

        // The intermediate level shrinks as promised.
        let regional = tree.merge_level(&checkpoints).unwrap();
        assert_eq!(regional.len(), checkpoints.len().div_ceil(fan_in));

        let global = tree.merge_to_root(&checkpoints).unwrap();
        assert_eq!(global.reports(), flat.reports(), "fan_in={fan_in}");
        let est = global.estimates();
        assert_eq!(reference.len(), est.len());
        for (i, (a, b)) in reference.iter().zip(&est).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{} fan_in {fan_in} item {i}: flat {a} != tree {b}",
                desc.kind().name()
            );
        }
    }
}

#[test]
fn merge_tree_grouping_is_invisible_olhc() {
    let d = 64;
    let desc = ProtocolDescriptor::builder(MechanismKind::CohortLocalHashing)
        .domain_size(d)
        .epsilon(1.0)
        .cohorts(64)
        .build()
        .unwrap();
    check_merge_tree(&desc, d, 3000);
}

#[test]
fn merge_tree_grouping_is_invisible_cms() {
    let d = 128;
    let desc = ProtocolDescriptor::builder(MechanismKind::AppleCms)
        .domain_size(d)
        .epsilon(2.0)
        .sketch(8, 128)
        .hash_seed(31)
        .build()
        .unwrap();
    check_merge_tree(&desc, d, 2000);
}

#[test]
fn merge_tree_grouping_is_invisible_dbitflip() {
    let k = 256u64;
    let desc = ProtocolDescriptor::builder(MechanismKind::MicrosoftDBitFlip)
        .domain_size(k)
        .bits_per_device(8)
        .epsilon(1.0)
        .build()
        .unwrap();
    check_merge_tree(&desc, k, 2000);
}

#[test]
fn merge_tree_rejects_degenerate_inputs() {
    assert!(MergeTree::new(0).is_err());
    assert!(MergeTree::new(1).is_err());
    let tree = MergeTree::new(2).unwrap();
    assert!(tree.merge_to_root(&[]).is_err());
}

#[test]
fn registry_steers_raw_olh_to_cohorts() {
    let desc = ProtocolDescriptor::builder(MechanismKind::OptimizedLocalHashing)
        .domain_size(1 << 20)
        .epsilon(1.0)
        .build()
        .unwrap();
    let err = CollectorService::from_descriptor(&desc).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("CohortLocalHashing"), "steering: {msg}");
    assert!(msg.contains("Planner::plan"), "planner remedy: {msg}");
    assert!(msg.contains("allow_linear_memory"), "escape hatch: {msg}");
}
