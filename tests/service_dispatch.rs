//! Descriptor-driven dispatch, end to end: for every mechanism kind the
//! workspace registry can build, a full collection round through the
//! byte path — `WireClient` frames in per-shard RNG streams, per-shard
//! `CollectorService`s, shard-order merges, estimates out — must be
//! **bit-identical** to the direct generic engine
//! (`accumulate_mech_sharded_sequential`) over the same inputs, seed,
//! and shard count.
//!
//! This is the acceptance gate of the protocol/wire layer: serialize →
//! transmit → decode → erased dispatch costs exactly zero statistical
//! fidelity.

use ldp::apple::cms::CmsOracle;
use ldp::apple::hcms::HcmsOracle;
use ldp::core::fo::{
    CohortLocalHashing, DirectEncoding, FoAggregator, FrequencyOracle, HadamardResponse,
    OptimizedLocalHashing, OptimizedUnaryEncoding, SubsetSelection, SummationHistogramEncoding,
    SymmetricUnaryEncoding, ThresholdHistogramEncoding,
};
use ldp::core::protocol::{MechanismKind, ProtocolDescriptor, DEFAULT_COHORT_SEED_BASE};
use ldp::core::Epsilon;
use ldp::microsoft::{DBitFlip, OneBitMean};
use ldp::workloads::parallel::{accumulate_mech_sharded_sequential, shard_seed};
use ldp::workloads::service::{CollectorService, WireClient};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 2018;
const SHARDS: usize = 7;

fn values(n: usize, d: u64) -> Vec<u64> {
    (0..n).map(|i| (i as u64).wrapping_mul(31) % d).collect()
}

/// Runs the byte path: client frames per shard, one service per shard,
/// merged in shard order.
fn byte_path_estimates(desc: &ProtocolDescriptor, values: &[u64]) -> Vec<f64> {
    let client = WireClient::from_descriptor(desc).expect("client builds");
    let buffers = client
        .frames_sharded(values, SEED, SHARDS)
        .expect("framing succeeds");
    let mut merged: Option<CollectorService> = None;
    for buf in &buffers {
        let mut shard = CollectorService::from_descriptor(desc).expect("service builds");
        let frames = shard.ingest_concat(buf).expect("frames ingest");
        assert!(frames > 0 || buf.is_empty());
        match merged.as_mut() {
            None => merged = Some(shard),
            Some(m) => m.merge(shard).expect("same-descriptor merge"),
        }
    }
    merged.expect("at least one shard").estimates()
}

/// Asserts the byte path reproduces the direct generic engine bit for
/// bit for an item-domain oracle.
fn check_oracle<O>(desc: &ProtocolDescriptor, oracle: O, n: usize)
where
    O: FrequencyOracle + Sync,
    O::Aggregator: Send,
{
    let vals = values(n, oracle.domain_size());
    let direct = accumulate_mech_sharded_sequential(&&oracle, &vals, SEED, SHARDS).estimate();
    let bytes = byte_path_estimates(desc, &vals);
    assert_eq!(direct.len(), bytes.len(), "{}", desc.kind().name());
    for (i, (a, b)) in direct.iter().zip(&bytes).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{} item {i}: direct {a} != bytes {b}",
            desc.kind().name()
        );
    }
}

fn base(kind: MechanismKind, d: u64) -> ProtocolDescriptor {
    ProtocolDescriptor::builder(kind)
        .domain_size(d)
        .epsilon(1.0)
        .build()
        .expect("valid descriptor")
}

#[test]
fn grr_bytes_match_generic_path() {
    let d = 32;
    check_oracle(
        &base(MechanismKind::DirectEncoding, d),
        DirectEncoding::new(d, Epsilon::new(1.0).unwrap()).unwrap(),
        2000,
    );
}

#[test]
fn sue_bytes_match_generic_path() {
    let d = 48;
    check_oracle(
        &base(MechanismKind::SymmetricUnary, d),
        SymmetricUnaryEncoding::new(d, Epsilon::new(1.0).unwrap()).unwrap(),
        1500,
    );
}

#[test]
fn oue_bytes_match_generic_path() {
    let d = 48;
    check_oracle(
        &base(MechanismKind::OptimizedUnary, d),
        OptimizedUnaryEncoding::new(d, Epsilon::new(1.0).unwrap()).unwrap(),
        1500,
    );
}

#[test]
fn she_bytes_match_generic_path() {
    // The one floating-point aggregator: the byte path must reproduce
    // even the f64 sums bit for bit (same per-shard accumulation order,
    // same shard-merge order).
    let d = 24;
    check_oracle(
        &base(MechanismKind::SummationHistogram, d),
        SummationHistogramEncoding::new(d, Epsilon::new(1.0).unwrap()).unwrap(),
        800,
    );
}

#[test]
fn the_bytes_match_generic_path() {
    let d = 48;
    check_oracle(
        &base(MechanismKind::ThresholdHistogram, d),
        ThresholdHistogramEncoding::new(d, Epsilon::new(1.0).unwrap()).unwrap(),
        1500,
    );
}

#[test]
fn olh_cohort_bytes_match_generic_path() {
    let d = 64;
    let desc = ProtocolDescriptor::builder(MechanismKind::CohortLocalHashing)
        .domain_size(d)
        .epsilon(1.0)
        .cohorts(128)
        .build()
        .unwrap();
    check_oracle(
        &desc,
        CohortLocalHashing::optimized_with_seed(
            d,
            128,
            DEFAULT_COHORT_SEED_BASE,
            Epsilon::new(1.0).unwrap(),
        ),
        3000,
    );
}

#[test]
fn hr_bytes_match_generic_path() {
    let d = 50; // non-power-of-two domain exercises the m > d spectrum
    check_oracle(
        &base(MechanismKind::HadamardResponse, d),
        HadamardResponse::new(d, Epsilon::new(1.0).unwrap()),
        2000,
    );
}

#[test]
fn ss_bytes_match_generic_path() {
    let d = 40;
    check_oracle(
        &base(MechanismKind::SubsetSelection, d),
        SubsetSelection::new(d, Epsilon::new(1.0).unwrap()),
        1200,
    );
}

#[test]
fn raw_olh_escape_hatch_bytes_match_generic_path() {
    let d = 32;
    let desc = ProtocolDescriptor::builder(MechanismKind::OptimizedLocalHashing)
        .domain_size(d)
        .epsilon(1.0)
        .allow_linear_memory()
        .build()
        .unwrap();
    check_oracle(
        &desc,
        OptimizedLocalHashing::new(d, Epsilon::new(1.0).unwrap()),
        1000,
    );
}

#[test]
fn apple_cms_bytes_match_generic_path() {
    let d = 128;
    let desc = ProtocolDescriptor::builder(MechanismKind::AppleCms)
        .domain_size(d)
        .epsilon(2.0)
        .sketch(8, 128)
        .hash_seed(31)
        .build()
        .unwrap();
    check_oracle(
        &desc,
        CmsOracle::new(8, 128, Epsilon::new(2.0).unwrap(), 31, d),
        2000,
    );
}

#[test]
fn apple_hcms_bytes_match_generic_path() {
    let d = 100;
    let desc = ProtocolDescriptor::builder(MechanismKind::AppleHcms)
        .domain_size(d)
        .epsilon(2.0)
        .sketch(8, 128)
        .hash_seed(31)
        .build()
        .unwrap();
    check_oracle(
        &desc,
        HcmsOracle::new(8, 128, Epsilon::new(2.0).unwrap(), 31, d),
        2000,
    );
}

#[test]
fn microsoft_dbitflip_bytes_match_generic_path() {
    let k = 256;
    let desc = ProtocolDescriptor::builder(MechanismKind::MicrosoftDBitFlip)
        .domain_size(k as u64)
        .bits_per_device(8)
        .epsilon(1.0)
        .build()
        .unwrap();
    check_oracle(
        &desc,
        DBitFlip::new(k, 8, Epsilon::new(1.0).unwrap()).unwrap(),
        2000,
    );
}

#[test]
fn microsoft_onebitmean_bytes_match_generic_path() {
    // Real-valued inputs: the byte path mirrors the shard plan by hand
    // (frames_sharded is item-typed), then merges in shard order.
    let desc = ProtocolDescriptor::builder(MechanismKind::MicrosoftOneBitMean)
        .epsilon(1.0)
        .max_value(500.0)
        .build()
        .unwrap();
    let mech = OneBitMean::new(Epsilon::new(1.0).unwrap(), 500.0).unwrap();
    let inputs: Vec<f64> = (0..3000).map(|i| (i % 500) as f64).collect();

    let direct = accumulate_mech_sharded_sequential(&mech, &inputs, SEED, SHARDS).estimate();

    let client = WireClient::from_descriptor(&desc).unwrap();
    let shards = SHARDS.min(inputs.len());
    let chunk = inputs.len().div_ceil(shards);
    let mut merged: Option<CollectorService> = None;
    for s in 0..shards {
        let (lo, hi) = (
            (s * chunk).min(inputs.len()),
            ((s + 1) * chunk).min(inputs.len()),
        );
        let mut rng = StdRng::seed_from_u64(shard_seed(SEED, s));
        let mut buf = Vec::new();
        for &x in &inputs[lo..hi] {
            client.randomize_real(x, &mut rng, &mut buf).unwrap();
        }
        let mut shard = CollectorService::from_descriptor(&desc).unwrap();
        shard.ingest_concat(&buf).unwrap();
        match merged.as_mut() {
            None => merged = Some(shard),
            Some(m) => m.merge(shard).unwrap(),
        }
    }
    let bytes = merged.unwrap().estimates();
    assert_eq!(direct.len(), bytes.len());
    for (a, b) in direct.iter().zip(&bytes) {
        assert_eq!(a.to_bits(), b.to_bits(), "direct {a} != bytes {b}");
    }
}

#[test]
fn serialized_descriptor_drives_the_same_service() {
    // Ship the descriptor itself over the wire: a service built from
    // the deserialized bytes is indistinguishable from one built from
    // the original.
    let d = 64;
    let desc = ProtocolDescriptor::builder(MechanismKind::CohortLocalHashing)
        .domain_size(d)
        .epsilon(1.5)
        .cohorts(64)
        .build()
        .unwrap();
    let shipped = ProtocolDescriptor::from_bytes(&desc.to_bytes()).unwrap();
    assert_eq!(shipped, desc);

    let vals = values(1000, d);
    let a = byte_path_estimates(&desc, &vals);
    let b = byte_path_estimates(&shipped, &vals);
    assert_eq!(a, b);
}

#[test]
fn registry_steers_raw_olh_to_cohorts() {
    let desc = ProtocolDescriptor::builder(MechanismKind::OptimizedLocalHashing)
        .domain_size(1 << 20)
        .epsilon(1.0)
        .build()
        .unwrap();
    let err = CollectorService::from_descriptor(&desc).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("CohortLocalHashing"), "steering: {msg}");
    assert!(msg.contains("allow_linear_memory"), "escape hatch: {msg}");
}
