//! End-to-end integration tests: each deployed system's full pipeline,
//! exercised through the `ldp` facade exactly as the examples use it.

use ldp::core::Epsilon;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn rappor_pipeline_recovers_ranking() {
    use ldp::rappor::{RapporAggregator, RapporClient, RapporParams};
    let params = RapporParams::new(64, 2, 8, 0.25, 0.35, 0.65).expect("valid params");
    let mut rng = StdRng::seed_from_u64(100);
    let mut agg = RapporAggregator::new(params.clone());
    let pages = [("alpha", 8000usize), ("beta", 4000), ("gamma", 1000)];
    for &(url, count) in &pages {
        for _ in 0..count {
            let mut c = RapporClient::with_random_cohort(params.clone(), &mut rng);
            agg.accumulate(&c.report(url.as_bytes(), &mut rng));
        }
    }
    let candidates: Vec<&[u8]> = vec![b"alpha", b"beta", b"gamma", b"delta"];
    let top = agg.top_candidates(&candidates);
    assert!(!top.is_empty());
    assert_eq!(top[0].0, 0, "alpha should rank first: {top:?}");
    if top.len() > 1 {
        assert!(top[0].1 > top[1].1);
    }
}

#[test]
fn apple_pipeline_cms_and_hcms_agree() {
    use ldp::apple::cms::CmsProtocol;
    use ldp::apple::hcms::HcmsProtocol;
    let eps = Epsilon::new(4.0).expect("valid eps");
    let mut rng = StdRng::seed_from_u64(200);
    let cms = CmsProtocol::new(32, 512, eps, 3);
    let hcms = HcmsProtocol::new(32, 512, eps, 3);
    let mut s1 = cms.new_server();
    let mut s2 = hcms.new_server();
    let n = 40_000;
    for u in 0..n {
        let token = if u % 5 == 0 { 7u64 } else { 100_000 + u as u64 };
        s1.accumulate(&cms.randomize(token, &mut rng));
        s2.accumulate(&hcms.randomize(token, &mut rng));
    }
    let truth = n as f64 / 5.0;
    let (e1, e2) = (s1.estimate(7), s2.estimate(7));
    assert!((e1 - truth).abs() < 1500.0, "CMS estimate {e1}");
    assert!((e2 - truth).abs() < 4000.0, "HCMS estimate {e2}");
}

#[test]
fn microsoft_pipeline_longitudinal_mean() {
    use ldp::microsoft::{MemoizedMeanClient, OneBitMean, RoundingConfig};
    let eps = Epsilon::new(1.0).expect("valid eps");
    let mech = OneBitMean::new(eps, 100.0).expect("valid range");
    let config = RoundingConfig::new(0.05).expect("valid gamma");
    let mut rng = StdRng::seed_from_u64(300);
    let n = 60_000;
    let clients: Vec<MemoizedMeanClient> = (0..n)
        .map(|_| MemoizedMeanClient::enroll(mech, config, &mut rng))
        .collect();
    // True mean 40: values 20/60 half-half.
    for round in 0..3 {
        let bits: Vec<bool> = clients
            .iter()
            .enumerate()
            .map(|(i, c)| c.report(if i % 2 == 0 { 20.0 } else { 60.0 }, &mut rng))
            .collect();
        let est = MemoizedMeanClient::estimate_round_mean(&mech, &config, &bits);
        assert!((est - 40.0).abs() < 4.0, "round {round}: {est}");
    }
}

#[test]
fn heavy_hitter_pipeline_on_facade() {
    use ldp::analytics::hh::PrefixExtendingMethod;
    let pem = PrefixExtendingMethod::new(16, 8, 4, 8, Epsilon::new(3.0).expect("valid eps"))
        .expect("valid pem");
    let mut rng = StdRng::seed_from_u64(400);
    let mut values = vec![0x1234u64; 20_000];
    values.extend((0..20_000u64).map(|i| ldp::sketch::hash::mix64(i) & 0xffff));
    let found = pem.run(&values, &mut rng);
    assert!(
        found.iter().take(3).any(|h| h.value == 0x1234),
        "planted value missing: {found:?}"
    );
}

#[test]
fn marginals_pipeline_three_way() {
    use ldp::analytics::marginals::{exact_marginal, FourierMarginals, MarginalQuery};
    let d = 6u32;
    let q = MarginalQuery::from_attrs(&[0, 2, 4]);
    let fm =
        FourierMarginals::new(d, &[q], Epsilon::new(2.0).expect("valid eps")).expect("valid query");
    let mut rng = StdRng::seed_from_u64(500);
    let data: Vec<u64> = (0..80_000)
        .map(|_| {
            let a: u64 = rng.gen_bool(0.7) as u64;
            let c: u64 = if rng.gen_bool(0.8) { a } else { 1 - a };
            let e: u64 = rng.gen_bool(0.5) as u64;
            a | (rng.gen_bool(0.5) as u64) << 1
                | c << 2
                | (rng.gen_bool(0.5) as u64) << 3
                | e << 4
                | (rng.gen_bool(0.5) as u64) << 5
        })
        .collect();
    let coeffs = fm.collect(&data, &mut rng);
    let est = fm.reconstruct(&coeffs, q);
    let truth = exact_marginal(&data, q);
    for (cell, (&e, &t)) in est
        .probabilities
        .iter()
        .zip(&truth.probabilities)
        .enumerate()
    {
        assert!((e - t).abs() < 0.05, "cell {cell}: {e} vs {t}");
    }
}

#[test]
fn budget_accounting_spans_systems() {
    use ldp::core::PrivacyBudget;
    // A device participating in two collections under one budget.
    let mut budget = PrivacyBudget::new(Epsilon::new(2.0).expect("valid eps"));
    let eps_hist = budget.draw(1.0).expect("first draw fits");
    let eps_mean = budget.draw(1.0).expect("second draw fits");
    assert!(budget.draw(0.1).is_err(), "budget must be exhausted");

    let mut rng = StdRng::seed_from_u64(600);
    use ldp::core::fo::{FoAggregator, FrequencyOracle, OptimizedLocalHashing};
    use ldp::microsoft::OneBitMean;
    let oracle = OptimizedLocalHashing::new(16, eps_hist);
    let mech = OneBitMean::new(eps_mean, 10.0).expect("valid range");
    let mut agg = oracle.new_aggregator();
    let mut bits = Vec::new();
    for u in 0..20_000u64 {
        agg.accumulate(&oracle.randomize(u % 16, &mut rng));
        bits.push(mech.randomize((u % 11) as f64, &mut rng));
    }
    let est_counts = agg.estimate();
    assert!((est_counts[0] - 1250.0).abs() < 800.0);
    assert!((mech.estimate_mean(&bits) - 5.0).abs() < 0.5);
}
