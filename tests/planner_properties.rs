//! Planner contracts, twice over.
//!
//! **Property side:** for any valid [`WorkloadSpec`], every plan the
//! planner returns must hand back a descriptor that survives the full
//! deployment path — serialization round-trip, workspace-registry
//! instantiation — while its predicted costs respect every budget the
//! spec imposed, in predicted-variance order. These are the guarantees
//! `Planner::plan` documents; proptest hunts for the spec that breaks
//! them.
//!
//! **Empirical side:** a predicted σ² is only useful if the mechanism it
//! describes actually delivers it. For OLH-C, OUE, CMS, and dBitFlip the
//! planned descriptor is executed over the byte path — all reports on
//! one random item, querying an absent item whose true count is zero, so
//! the estimate's spread *is* the noise floor the planner ranked on —
//! and the sample variance across trials must sit within five standard
//! errors of the prediction. (Variance-of-sample-variance for a
//! near-Gaussian estimator is `2σ⁴/(T−1)`, so five standard errors at
//! `T = 250` is a ±45% band — wide enough for approximation error in the
//! documented CMS/dBitFlip formulas, tight enough to catch a wrong
//! constant or a misrouted knob.)

use ldp::core::protocol::{MechanismKind, ProtocolDescriptor};
use ldp::planner::{workspace_planner, Plan, Planner, QueryShape, WorkloadSpec};
use ldp::workloads::service::{workspace_registry, CollectorService, WireClient};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Every contract `Planner::plan` documents, checked for one spec.
fn assert_plan_contracts(planner: &Planner, spec: &WorkloadSpec) {
    let plans = planner.plan(spec).expect("valid spec plans cleanly");
    let registry = workspace_registry();
    let mut prev_variance = f64::NEG_INFINITY;
    for plan in &plans {
        let desc = &plan.descriptor;
        let kind = desc.kind();

        // (a) + (b): the descriptor survives the wire round-trip intact.
        let revived = ProtocolDescriptor::from_bytes(&desc.to_bytes())
            .unwrap_or_else(|e| panic!("{kind:?}: descriptor round-trip failed: {e}"));
        assert_eq!(
            &revived, desc,
            "{kind:?}: round-trip changed the descriptor"
        );

        // (c): the workspace registry instantiates it.
        registry
            .build(desc)
            .unwrap_or_else(|e| panic!("{kind:?}: registry refused planned descriptor: {e}"));

        // (d): predicted costs respect every budget the spec imposed.
        assert!(
            plan.cost.fits(spec),
            "{kind:?}: plan violates spec budgets: {:?} vs {spec:?}",
            plan.cost
        );
        if let Some(mem) = spec.memory_budget {
            assert!(
                plan.cost.memory_bytes <= mem,
                "{kind:?}: memory over budget"
            );
        }
        if let Some(bytes) = spec.report_budget {
            assert!(
                plan.cost.bytes_per_report <= bytes,
                "{kind:?}: report bytes over budget"
            );
        }
        if spec.require_subtractive {
            assert!(plan.cost.subtractive, "{kind:?}: non-subtractive plan");
        }
        assert!(
            spec.allow_linear_memory || !plan.cost.linear_memory,
            "{kind:?}: linear-memory plan without opt-in"
        );

        // Ranked: predicted variance is non-decreasing down the list.
        assert!(
            plan.cost.variance >= prev_variance,
            "{kind:?}: plans not sorted by predicted variance"
        );
        prev_variance = plan.cost.variance;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // Optional budgets ride as sentinel integers (0 = unconstrained):
    // the vendored proptest covers ranges and `any`, not `option::of`.
    #[test]
    fn every_plan_builds_roundtrips_instantiates_and_fits(
        domain in 2u64..=100_000,
        population in 100u64..=1_000_000,
        eps_tenths in 2u64..=40,
        memory_kib in 0u64..=1024,
        report_bytes in 0u64..=64,
        subtractive in any::<bool>(),
        topk in 0u64..=32,
    ) {
        let mut spec = WorkloadSpec::new(domain, population, eps_tenths as f64 / 10.0);
        if memory_kib > 0 {
            spec = spec.with_memory_budget(memory_kib * 1024);
        }
        if report_bytes >= 4 {
            spec = spec.with_report_budget(report_bytes);
        }
        if subtractive {
            spec = spec.with_subtractive();
        }
        if topk > 0 {
            spec = spec.with_query_shape(QueryShape::TopK { k: topk });
        }
        assert_plan_contracts(&workspace_planner(), &spec);
    }
}

/// The linear-memory opt-in is honored end to end: with it, raw BLH/OLH
/// plans appear and still satisfy every contract above.
#[test]
fn linear_memory_opt_in_plans_keep_the_contracts() {
    let planner = workspace_planner();
    let spec = WorkloadSpec::new(512, 40_000, 1.0).with_linear_memory();
    assert_plan_contracts(&planner, &spec);
    let plans = planner.plan(&spec).expect("plans");
    assert!(
        plans
            .iter()
            .any(|p| matches!(p.kind(), MechanismKind::BinaryLocalHashing)
                || matches!(p.kind(), MechanismKind::OptimizedLocalHashing)),
        "opt-in spec should surface a raw local-hashing plan"
    );
}

// --- Empirical: predicted σ² vs measured noise-floor variance. ---

/// Finds the plan for `kind` in a roomy spec's ranked list.
fn plan_for(kind: MechanismKind, spec: &WorkloadSpec) -> Plan {
    workspace_planner()
        .plan(spec)
        .expect("roomy spec plans")
        .into_iter()
        .find(|p| p.kind() == kind)
        .unwrap_or_else(|| panic!("{kind:?} missing from roomy plan list"))
}

/// Executes the planned descriptor over the byte path `trials` times —
/// every report on one random item, estimate read at a different item
/// whose true count is zero — and returns the sample variance of that
/// estimate. Randomizing the item pair per trial averages over hash
/// placements, which is the expectation the analytic formulas take.
fn measured_noise_floor(plan: &Plan, n: usize, trials: usize, seed: u64) -> f64 {
    let d = plan.descriptor.domain_size();
    let client = WireClient::from_descriptor(&plan.descriptor).expect("client builds");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut estimates = Vec::with_capacity(trials);
    for _ in 0..trials {
        let held = rng.gen_range(0..d);
        let mut absent = rng.gen_range(0..d);
        while absent == held {
            absent = rng.gen_range(0..d);
        }
        let mut service =
            CollectorService::from_descriptor(&plan.descriptor).expect("service builds");
        let mut wire = Vec::new();
        for _ in 0..n {
            client
                .randomize_item(held, &mut rng, &mut wire)
                .expect("frame");
        }
        service.ingest_concat(&wire).expect("ingest");
        estimates.push(service.estimates()[absent as usize]);
    }
    let mean = estimates.iter().sum::<f64>() / trials as f64;
    estimates
        .iter()
        .map(|e| (e - mean) * (e - mean))
        .sum::<f64>()
        / (trials - 1) as f64
}

fn assert_noise_floor_matches(kind: MechanismKind, spec: &WorkloadSpec, seed: u64) {
    const TRIALS: usize = 250;
    let n = spec.population as usize;
    let plan = plan_for(kind, spec);
    let predicted = plan.cost.variance;
    let measured = measured_noise_floor(&plan, n, TRIALS, seed);
    // Sample variance of a near-Gaussian estimator has standard error
    // σ²·√(2/(T−1)); require agreement within five of those.
    let tolerance = 5.0 * predicted * (2.0 / (TRIALS - 1) as f64).sqrt();
    assert!(
        (measured - predicted).abs() <= tolerance,
        "{kind:?}: measured noise-floor variance {measured:.1} vs predicted {predicted:.1} \
         (tolerance ±{tolerance:.1})"
    );
}

#[test]
fn predicted_variance_matches_measured_oue() {
    let spec = WorkloadSpec::new(64, 2_000, 1.0);
    assert_noise_floor_matches(MechanismKind::OptimizedUnary, &spec, 0xa11ce);
}

#[test]
fn predicted_variance_matches_measured_olh_cohorts() {
    let spec = WorkloadSpec::new(64, 2_000, 1.0);
    assert_noise_floor_matches(MechanismKind::CohortLocalHashing, &spec, 0xb0b);
}

#[test]
fn predicted_variance_matches_measured_cms() {
    // Budgets steer the tuner to a small sketch (m = 256, few rows):
    // the variance formula is the same, and 250 byte-path trials stay
    // cheap enough for debug-mode CI.
    let spec = WorkloadSpec::new(64, 2_000, 1.0)
        .with_report_budget(40)
        .with_memory_budget(8 * 1024);
    assert_noise_floor_matches(MechanismKind::AppleCms, &spec, 0xc4a7);
}

#[test]
fn predicted_variance_matches_measured_dbitflip() {
    let spec = WorkloadSpec::new(64, 2_000, 1.0);
    assert_noise_floor_matches(MechanismKind::MicrosoftDBitFlip, &spec, 0xd1ce);
}
