//! Cross-crate integration tests: the ε-LDP property itself, verified
//! empirically on every client-side randomizer in the workspace.
//!
//! The test estimates, for a pair of adversarially chosen inputs, the
//! probability of each observable output event, and checks the
//! likelihood ratio never exceeds `e^ε` (within sampling tolerance).
//! This is the contract every other guarantee in the tutorial builds on.

use ldp::core::fo::{
    DirectEncoding, FrequencyOracle, OptimizedLocalHashing, OptimizedUnaryEncoding,
};
use ldp::core::rr::BinaryRandomizedResponse;
use ldp::core::Epsilon;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 300_000;
const EPS: f64 = 1.0;

fn assert_ratio_bounded(p_a: f64, p_b: f64, label: &str) {
    if p_a < 1e-4 || p_b < 1e-4 {
        return; // too rare to estimate the ratio reliably
    }
    let ratio = p_a / p_b;
    let bound = EPS.exp() * 1.10; // 10% sampling slack
    assert!(
        ratio <= bound && 1.0 / ratio <= bound,
        "{label}: likelihood ratio {ratio:.3} exceeds e^eps = {:.3}",
        EPS.exp()
    );
}

#[test]
fn binary_rr_is_eps_ldp() {
    let rr = BinaryRandomizedResponse::new(Epsilon::new(EPS).expect("valid eps"));
    let mut rng = StdRng::seed_from_u64(1);
    let p_true_1 = (0..N).filter(|_| rr.randomize(true, &mut rng)).count() as f64 / N as f64;
    let p_false_1 = (0..N).filter(|_| rr.randomize(false, &mut rng)).count() as f64 / N as f64;
    assert_ratio_bounded(p_true_1, p_false_1, "RR output 1");
    assert_ratio_bounded(1.0 - p_true_1, 1.0 - p_false_1, "RR output 0");
}

#[test]
fn grr_is_eps_ldp() {
    let m = DirectEncoding::new(8, Epsilon::new(EPS).expect("valid eps")).expect("valid domain");
    let mut rng = StdRng::seed_from_u64(2);
    // Output histograms under inputs 0 and 1.
    let mut h0 = [0u64; 8];
    let mut h1 = [0u64; 8];
    for _ in 0..N {
        h0[m.randomize(0, &mut rng) as usize] += 1;
        h1[m.randomize(1, &mut rng) as usize] += 1;
    }
    for out in 0..8 {
        assert_ratio_bounded(
            h0[out] as f64 / N as f64,
            h1[out] as f64 / N as f64,
            &format!("GRR output {out}"),
        );
    }
}

#[test]
fn oue_per_bit_channels_compose_to_eps() {
    // For unary encodings the full-report ratio is the product over the
    // (at most two) differing bit positions; verify per-bit channels.
    let m = OptimizedUnaryEncoding::new(8, Epsilon::new(EPS).expect("valid eps"))
        .expect("valid domain");
    let (p, q) = m.probabilities();
    // Worst-case composed ratio across the two differing bits:
    let ratio = (p / q) * ((1.0 - q) / (1.0 - p));
    assert!(ratio <= EPS.exp() * 1.0001, "OUE channel ratio {ratio}");
    // Empirical bit rates match (p, q).
    let mut rng = StdRng::seed_from_u64(3);
    let mut ones_true = 0u64;
    let mut ones_false = 0u64;
    for _ in 0..N / 4 {
        let r = m.randomize(0, &mut rng);
        if r.get(0) {
            ones_true += 1;
        }
        if r.get(5) {
            ones_false += 1;
        }
    }
    let n = (N / 4) as f64;
    assert!((ones_true as f64 / n - p).abs() < 0.01);
    assert!((ones_false as f64 / n - q).abs() < 0.01);
}

#[test]
fn olh_bucket_channel_is_eps_ldp() {
    // Conditional on any hash seed, OLH output is GRR over g buckets.
    let m = OptimizedLocalHashing::new(1 << 20, Epsilon::new(EPS).expect("valid eps"));
    let mut rng = StdRng::seed_from_u64(4);
    // Compare P(report supports v) for the holder of v vs another user.
    let v = 777u64;
    let w = 888u64;
    let mut support_holder = 0u64;
    let mut support_other = 0u64;
    let fam = ldp::sketch::hash::HashFamily::new(m.g());
    for _ in 0..N {
        let r = m.randomize(v, &mut rng);
        if fam.hash(v, r.seed) == r.bucket {
            support_holder += 1;
        }
        let r2 = m.randomize(w, &mut rng);
        if fam.hash(v, r2.seed) == r2.bucket {
            support_other += 1;
        }
    }
    let p_star = support_holder as f64 / N as f64;
    let q_star = support_other as f64 / N as f64;
    // p*/q* <= e^eps must hold (it's implied by, not equal to, the LDP
    // bound; the bound is tight on the bucket value itself).
    assert!(
        p_star / q_star <= EPS.exp() * 1.1,
        "support ratio {} too large",
        p_star / q_star
    );
    // And the debias pair should be near the analytical values.
    let g = m.g() as f64;
    let e = EPS.exp();
    assert!((p_star - e / (e + g - 1.0)).abs() < 0.01, "p*={p_star}");
    assert!((q_star - 1.0 / g).abs() < 0.01, "q*={q_star}");
}
