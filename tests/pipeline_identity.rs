//! The concurrent pipeline's determinism contract, property-tested over
//! worker counts, shard counts, and batch splits:
//!
//! * **Integer-counter mechanisms** (OLH-C, CMS, dBitFlip — every
//!   registered kind except the float aggregators): the pipeline's
//!   merged aggregate is bit-identical to **one** `CollectorService`
//!   ingesting the same frames through `ingest_concat`, whatever the
//!   worker count or batch split — their merges are exact integer
//!   addition, so the shard fold commutes with a flat pass.
//! * **Float SHE**: `f64` addition is not associative, so the honest
//!   reference is the *sharded* one — per-shard services merged in
//!   shard order, exactly `parallel.rs`'s invariant. The pipeline must
//!   reproduce it bit for bit across worker counts and batch splits
//!   (every shard's state is accumulated in submission order on one
//!   worker, and the finish-time fold runs in shard order regardless of
//!   which worker hosted which shard).

use ldp::core::protocol::{MechanismKind, ProtocolDescriptor};
use ldp::workloads::pipeline::{
    stream_population, BackpressurePolicy, CollectorPipeline, PipelineConfig,
};
use ldp::workloads::service::{CollectorService, WireClient};
use proptest::prelude::*;

const SEED: u64 = 2018;

fn values(n: usize, d: u64) -> Vec<u64> {
    (0..n).map(|i| (i as u64).wrapping_mul(31) % d).collect()
}

fn olhc() -> ProtocolDescriptor {
    ProtocolDescriptor::builder(MechanismKind::CohortLocalHashing)
        .domain_size(32)
        .epsilon(1.0)
        .cohorts(64)
        .build()
        .expect("valid descriptor")
}

fn cms() -> ProtocolDescriptor {
    ProtocolDescriptor::builder(MechanismKind::AppleCms)
        .domain_size(64)
        .epsilon(2.0)
        .sketch(8, 128)
        .hash_seed(31)
        .build()
        .expect("valid descriptor")
}

fn dbitflip() -> ProtocolDescriptor {
    ProtocolDescriptor::builder(MechanismKind::MicrosoftDBitFlip)
        .domain_size(64)
        .bits_per_device(8)
        .epsilon(1.0)
        .build()
        .expect("valid descriptor")
}

fn she() -> ProtocolDescriptor {
    ProtocolDescriptor::builder(MechanismKind::SummationHistogram)
        .domain_size(24)
        .epsilon(1.0)
        .build()
        .expect("valid descriptor")
}

/// Runs the population through a pipeline with the given shape and
/// returns the merged estimates.
fn pipeline_estimates(
    desc: &ProtocolDescriptor,
    vals: &[u64],
    shards: usize,
    workers: usize,
    batches_per_shard: usize,
) -> (Vec<f64>, usize) {
    let client = WireClient::from_descriptor(desc).expect("client builds");
    let pipeline = CollectorPipeline::new(
        desc,
        PipelineConfig {
            shards,
            workers,
            queue_depth: 3,
            policy: BackpressurePolicy::Block,
        },
    )
    .expect("pipeline builds");
    let accepted =
        stream_population(&client, &pipeline, vals, SEED, batches_per_shard).expect("stream");
    assert_eq!(accepted, vals.len(), "Block policy accepts everything");
    let (service, stats) = pipeline.finish().expect("finish");
    assert_eq!(stats.total_frames(), vals.len());
    assert_eq!(stats.dropped_batches(), 0);
    (service.estimates(), service.reports())
}

/// One flat service over the same per-shard frame buffers — the
/// reference for exact-integer mechanisms.
fn flat_estimates(desc: &ProtocolDescriptor, vals: &[u64], shards: usize) -> (Vec<f64>, usize) {
    let client = WireClient::from_descriptor(desc).expect("client builds");
    let mut service = CollectorService::from_descriptor(desc).expect("service builds");
    for buf in &client.frames_sharded(vals, SEED, shards).expect("framing") {
        service.ingest_concat(buf).expect("frames ingest");
    }
    (service.estimates(), service.reports())
}

/// Per-shard services merged in shard order — the reference for the
/// float aggregators (`parallel.rs`'s invariant).
fn sharded_estimates(desc: &ProtocolDescriptor, vals: &[u64], shards: usize) -> (Vec<f64>, usize) {
    let client = WireClient::from_descriptor(desc).expect("client builds");
    let mut merged: Option<CollectorService> = None;
    for buf in &client.frames_sharded(vals, SEED, shards).expect("framing") {
        let mut shard = CollectorService::from_descriptor(desc).expect("service builds");
        shard.ingest_concat(buf).expect("frames ingest");
        match merged.as_mut() {
            None => merged = Some(shard),
            Some(m) => m.merge(shard).expect("same-descriptor merge"),
        }
    }
    let merged = merged.expect("at least one shard");
    (merged.estimates(), merged.reports())
}

fn assert_bits_equal(kind: &str, got: &(Vec<f64>, usize), want: &(Vec<f64>, usize)) {
    assert_eq!(got.1, want.1, "{kind}: report counts differ");
    assert_eq!(got.0.len(), want.0.len(), "{kind}: estimate widths differ");
    for (i, (g, w)) in got.0.iter().zip(&want.0).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{kind} item {i}: pipeline {g} != reference {w}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Integer-counter kinds equal a flat single-service ingest for any
    // pipeline shape.
    #[test]
    fn pipeline_matches_flat_ingest_olhc(
        shards in 1usize..9,
        workers in 1usize..6,
        parts in 1usize..5,
    ) {
        let desc = olhc();
        let vals = values(700, desc.domain_size());
        let got = pipeline_estimates(&desc, &vals, shards, workers, parts);
        let want = flat_estimates(&desc, &vals, shards);
        assert_bits_equal("OLH-C", &got, &want);
    }

    #[test]
    fn pipeline_matches_flat_ingest_cms(
        shards in 1usize..9,
        workers in 1usize..6,
        parts in 1usize..5,
    ) {
        let desc = cms();
        let vals = values(500, desc.domain_size());
        let got = pipeline_estimates(&desc, &vals, shards, workers, parts);
        let want = flat_estimates(&desc, &vals, shards);
        assert_bits_equal("CMS", &got, &want);
    }

    #[test]
    fn pipeline_matches_flat_ingest_dbitflip(
        shards in 1usize..9,
        workers in 1usize..6,
        parts in 1usize..5,
    ) {
        let desc = dbitflip();
        let vals = values(500, desc.domain_size());
        let got = pipeline_estimates(&desc, &vals, shards, workers, parts);
        let want = flat_estimates(&desc, &vals, shards);
        assert_bits_equal("dBitFlip", &got, &want);
    }

    // Float SHE equals the sharded reference (per-shard services merged
    // in shard order) for any worker count and batch split — and the
    // reference itself is worker-count-free, so the aggregate is too.
    #[test]
    fn pipeline_matches_sharded_reference_she(
        shards in 1usize..9,
        workers in 1usize..6,
        parts in 1usize..5,
    ) {
        let desc = she();
        let vals = values(400, desc.domain_size());
        let got = pipeline_estimates(&desc, &vals, shards, workers, parts);
        let want = sharded_estimates(&desc, &vals, shards);
        assert_bits_equal("SHE", &got, &want);
    }
}

/// The integer-kind flat reference and the sharded reference coincide
/// exactly (integer merges commute), so the two proptest references are
/// mutually consistent — pinned here once so a future aggregator change
/// that breaks this assumption fails loudly rather than silently
/// weakening the flat-reference tests.
#[test]
fn flat_and_sharded_references_coincide_for_integer_kinds() {
    for desc in [olhc(), cms(), dbitflip()] {
        let vals = values(600, desc.domain_size());
        let flat = flat_estimates(&desc, &vals, 5);
        let sharded = sharded_estimates(&desc, &vals, 5);
        assert_bits_equal(desc.kind().name(), &flat, &sharded);
    }
}
