//! Workspace-wiring smoke tests: the manifests must keep every
//! experiment binary, criterion bench, and example both *present on
//! disk* and *declared/discoverable* so `cargo build --workspace
//! --all-targets` (run in CI) compiles all of them. A deleted or
//! renamed target file fails here immediately instead of silently
//! vanishing from the build.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    // CARGO_MANIFEST_DIR of the `ldp` package is the workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn rust_file_stems(dir: &Path) -> BTreeSet<String> {
    let mut stems = BTreeSet::new();
    let entries =
        std::fs::read_dir(dir).unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()));
    for entry in entries {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|x| x == "rs") {
            stems.insert(
                path.file_stem()
                    .expect("file stem")
                    .to_string_lossy()
                    .into_owned(),
            );
        }
    }
    stems
}

/// The 15 exp_* binaries DESIGN.md indexes, plus the ldp-sim demo.
const EXPECTED_EXPERIMENTS: [&str; 16] = [
    "exp_a1_oracle_params",
    "exp_a2_postprocess",
    "exp_a3_range_queries",
    "exp_e1_rr",
    "exp_e2_fo_variance",
    "exp_e3_rappor",
    "exp_e4_apple_cms",
    "exp_e5_microsoft",
    "exp_e6_heavy_hitters",
    "exp_e7_marginals",
    "exp_e8_spatial",
    "exp_e9_hybrid",
    "exp_e10_graph",
    "exp_e11_central_vs_local",
    "exp_e12_rounds",
    "ldp_sim",
];

#[test]
fn every_experiment_binary_is_present() {
    let mut found = rust_file_stems(&repo_root().join("crates/bench/src/bin"));
    // The demo simulator lives in the facade crate, not ldp-bench.
    assert!(
        repo_root().join("src/bin/ldp-sim.rs").is_file(),
        "src/bin/ldp-sim.rs missing"
    );
    found.insert("ldp_sim".to_string());
    let expected: BTreeSet<String> = EXPECTED_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    assert_eq!(
        found, expected,
        "experiment binaries drifted from DESIGN.md's index \
         (update DESIGN.md, EXPERIMENTS.md, and this list together)"
    );
}

#[test]
fn every_criterion_bench_is_present_and_declared() {
    let root = repo_root();
    let found = rust_file_stems(&root.join("crates/bench/benches"));
    let expected: BTreeSet<String> = ["aggregate_throughput", "encode_throughput", "substrate_ops"]
        .map(String::from)
        .into();
    assert_eq!(found, expected, "bench files drifted");

    // Criterion benches only build if the manifest declares them with
    // `harness = false`; discovery alone would wire in the default
    // libtest harness and fail on `criterion_main!`.
    let manifest = std::fs::read_to_string(root.join("crates/bench/Cargo.toml"))
        .expect("read crates/bench/Cargo.toml");
    for name in &expected {
        assert!(
            manifest.contains(&format!("name = \"{name}\"")),
            "bench {name} not declared in crates/bench/Cargo.toml"
        );
    }
    assert_eq!(
        manifest.matches("harness = false").count(),
        expected.len(),
        "every [[bench]] needs harness = false"
    );
}

#[test]
fn every_example_is_present() {
    let found = rust_file_stems(&repo_root().join("examples"));
    let expected: BTreeSet<String> = [
        "app_usage",
        "checkpoint_restore",
        "emoji_keyboard",
        "itemset_mining",
        "location_heatmap",
        "mechanism_planner",
        "next_word",
        "quickstart",
        "url_telemetry",
    ]
    .map(String::from)
    .into();
    assert_eq!(found, expected, "examples drifted");
}

#[test]
fn docs_cited_by_crate_rustdoc_exist() {
    // crates/bench/src/lib.rs and crates/workloads/src/lib.rs cite
    // DESIGN.md and EXPERIMENTS.md; keep those references real.
    let root = repo_root();
    for doc in ["DESIGN.md", "EXPERIMENTS.md", "README.md", "ROADMAP.md"] {
        assert!(root.join(doc).is_file(), "{doc} missing from repo root");
    }
    let design = std::fs::read_to_string(root.join("DESIGN.md")).expect("read DESIGN.md");
    assert!(
        design.contains("Substitution table") && design.contains("Experiment index"),
        "DESIGN.md must keep the sections the crate docs point at"
    );
}

#[test]
fn workspace_manifest_declares_all_members() {
    let manifest =
        std::fs::read_to_string(repo_root().join("Cargo.toml")).expect("read root Cargo.toml");
    for member in [
        "crates/core",
        "crates/sketch",
        "crates/rappor",
        "crates/apple",
        "crates/microsoft",
        "crates/analytics",
        "crates/workloads",
        "crates/bench",
        "vendor/rand",
        "vendor/proptest",
        "vendor/criterion",
    ] {
        let dir = repo_root().join(member);
        assert!(
            dir.join("Cargo.toml").is_file() && dir.join("src/lib.rs").is_file(),
            "{member} must stay a buildable workspace member"
        );
        // Globs cover crates/* and vendor/*; a member is wired either
        // by glob or by an explicit path in workspace.dependencies.
        assert!(
            manifest.contains(&format!("path = \"{member}\""))
                || manifest.contains("\"crates/*\"") && member.starts_with("crates/")
                || manifest.contains("\"vendor/*\"") && member.starts_with("vendor/"),
            "{member} not reachable from the workspace manifest"
        );
    }
}
